// Command incshrink-lint is the multichecker for incshrink's determinism
// and obliviousness analyzers (detclock, rngdraw, maporder, poolsteal,
// oblivtaint, goleak, atomicmix — see internal/analysis). It is usable
// two ways:
//
// Standalone, over the whole module (the make-lint entry point):
//
//	incshrink-lint ./...
//
// As a vet tool, which is also what standalone mode execs under the hood:
//
//	go vet -vettool=$(command -v incshrink-lint) ./...
//
// Analyzers are enabled with -detclock, -rngdraw, -maporder, -poolsteal,
// -oblivtaint, -goleak, -atomicmix (all on by default) and scoped with
// -detclock.exclude / -rngdraw.pkgs / -oblivtaint.pkgs /
// -oblivtaint.sanction / -goleak.exclude.
// Intentional violations are annotated in source with
// `//lint:allow <analyzer> <reason>`; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"incshrink/internal/analysis"
	"incshrink/internal/analysis/unitchecker"
)

func main() {
	unitchecker.RegisterFlags()
	enable := map[string]*bool{}
	for _, a := range analysis.All() {
		enable[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer: "+a.Doc)
	}
	detclockExclude := flag.String("detclock.exclude", strings.Join(analysis.DetClockExclude, ","),
		"comma-separated module-relative package prefixes detclock skips")
	detclockSanction := flag.String("detclock.sanction", strings.Join(analysis.DetClockSanctioned, ","),
		"comma-separated module-relative package prefixes allowed to read the wall clock (the math/rand ban still applies)")
	rngdrawPkgs := flag.String("rngdraw.pkgs", encodePkgList(analysis.RNGDrawPackages),
		"comma-separated module-relative snapshot-covered packages rngdraw polices ('.' is the module root)")
	oblivtaintPkgs := flag.String("oblivtaint.pkgs", encodePkgList(analysis.OblivTaintPackages),
		"comma-separated module-relative packages carrying the obliviousness obligation")
	oblivtaintSanction := flag.String("oblivtaint.sanction", strings.Join(analysis.OblivTaintSanctioned, ","),
		"comma-separated '<pkg>.<Recv.>Func' constant-time primitives whose bodies oblivtaint exempts")
	goleakExclude := flag.String("goleak.exclude", strings.Join(analysis.GoLeakExclude, ","),
		"comma-separated module-relative package prefixes goleak skips")
	tests := flag.Bool("tests", false, "also report findings in _test.go files")
	unusedallow := flag.Bool("unusedallow", false, "report //lint:allow comments that suppress nothing")
	flag.Parse()
	unitchecker.MaybePrintFlags()

	analysis.DetClockExclude = splitList(*detclockExclude)
	analysis.DetClockSanctioned = splitList(*detclockSanction)
	analysis.RNGDrawPackages = decodePkgList(*rngdrawPkgs)
	analysis.OblivTaintPackages = decodePkgList(*oblivtaintPkgs)
	analysis.OblivTaintSanctioned = splitList(*oblivtaintSanction)
	analysis.GoLeakExclude = splitList(*goleakExclude)

	var enabled []*analysis.Analyzer
	for _, a := range analysis.All() {
		if *enable[a.Name] {
			enabled = append(enabled, a)
		}
	}
	opts := analysis.Options{IncludeTests: *tests, ReportUnusedAllows: *unusedallow}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		unitchecker.Run(args[0], enabled, opts) // exits
	}

	// Standalone mode: delegate loading, export data and test variants to
	// cmd/go by re-execing as our own vet tool.
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "incshrink-lint:", err)
		os.Exit(1)
	}
	vetArgs := []string{"vet", "-vettool=" + self}
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "V", "flags":
			return
		}
		vetArgs = append(vetArgs, "-"+f.Name+"="+f.Value.String())
	})
	if len(args) == 0 {
		args = []string{"./..."}
	}
	vetArgs = append(vetArgs, args...)

	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "incshrink-lint:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func encodePkgList(pkgs []string) string {
	enc := make([]string, len(pkgs))
	for i, p := range pkgs {
		if p == "" {
			p = "."
		}
		enc[i] = p
	}
	return strings.Join(enc, ",")
}

func decodePkgList(s string) []string {
	parts := splitList(s)
	for i, p := range parts {
		if p == "." {
			parts[i] = ""
		}
	}
	return parts
}
