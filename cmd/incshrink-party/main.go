// Command incshrink-party runs one outsourcing server of the two-party
// IncShrink runtime as its own OS process, speaking the length-prefixed
// frame protocol over mutually-authenticated TLS. Two of these processes
// executing the same configuration complete a session byte-identical to the
// in-process loopback runtime — the transport-independence contract the
// internal/party tests pin and the -smoke harness re-checks end to end over
// a real socket pair.
//
// Modes:
//
//	incshrink-party -config party0.json [-out report.json]
//	    Run one party. Role 0 listens, role 1 dials (with retry).
//	incshrink-party -gencert DIR -name NAME
//	    Generate a self-signed certificate pair for one party.
//	incshrink-party -smoke [-bench BENCH_wire.json] [-tolerance 0.01]
//	    Spawn both parties as child processes over localhost TLS with
//	    temp-dir certificates, compare their reports against an in-process
//	    loopback reference, check measured wire rounds/bytes against the
//	    mpc cost-model predictions, and write the wire benchmark report.
//
// Config file format (JSON):
//
//	{
//	  "role": 0,                      // 0 listens, 1 dials
//	  "seed": 1234,                   // shared deployment seed
//	  "steps": 12,                    // protocol steps before the GMW segment
//	  "snapshot_at": 5,               // optional: snapshot after this step
//	  "listen": "127.0.0.1:7401",     // role 0: bind address
//	  "peer": "127.0.0.1:7401",       // role 1: role 0's address
//	  "cert": "party0.crt",           // this party's certificate
//	  "key": "party0.key",            // this party's private key
//	  "peer_cert": "party1.crt"       // pinned peer certificate
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"incshrink/internal/party"
	"incshrink/internal/wire"
)

// maxFrame bounds incoming frame payloads: the largest legitimate frame is
// the GMW triple block (a few hundred bytes), so 64 KiB is generous without
// letting a corrupt length prefix allocate unbounded memory.
const maxFrame = 1 << 16

type fileConfig struct {
	Role       int    `json:"role"`
	Seed       int64  `json:"seed"`
	Steps      int    `json:"steps"`
	SnapshotAt *int   `json:"snapshot_at,omitempty"`
	Listen     string `json:"listen,omitempty"`
	Peer       string `json:"peer,omitempty"`
	Cert       string `json:"cert"`
	Key        string `json:"key"`
	PeerCert   string `json:"peer_cert"`
}

func (fc fileConfig) sessionConfig() party.Config {
	cfg := party.Config{Role: fc.Role, Seed: fc.Seed, Steps: fc.Steps, SnapshotAt: -1}
	if fc.SnapshotAt != nil {
		cfg.SnapshotAt = *fc.SnapshotAt
	}
	return cfg
}

func main() {
	var (
		configPath = flag.String("config", "", "party configuration file (JSON)")
		outPath    = flag.String("out", "", "write the session report JSON here (default stdout)")
		gencertDir = flag.String("gencert", "", "generate a certificate pair into this directory and exit")
		certName   = flag.String("name", "party", "certificate basename for -gencert")
		smoke      = flag.Bool("smoke", false, "run the two-process localhost TLS smoke")
		benchPath  = flag.String("bench", "BENCH_wire.json", "smoke: write the wire benchmark report here")
		tolerance  = flag.Float64("tolerance", 0.01, "smoke: allowed relative deviation of measured wire cost from prediction")
		steps      = flag.Int("steps", 12, "smoke: protocol steps per session")
		seed       = flag.Int64("seed", 1234, "smoke: deployment seed")
	)
	flag.Parse()

	var err error
	switch {
	case *gencertDir != "":
		err = runGencert(*gencertDir, *certName)
	case *smoke:
		err = runSmoke(*benchPath, *tolerance, *steps, *seed)
	case *configPath != "":
		err = runParty(*configPath, *outPath)
	default:
		err = fmt.Errorf("one of -config, -gencert or -smoke is required")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "incshrink-party:", err)
		os.Exit(1)
	}
}

func runGencert(dir, name string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cert, key, err := wire.GenerateCert(dir, name)
	if err != nil {
		return err
	}
	fmt.Println(cert)
	fmt.Println(key)
	return nil
}

// connect establishes this party's TLS connection: role 0 binds and accepts
// one peer, role 1 dials with retry until the listener is up.
func connect(fc fileConfig) (wire.Conn, error) {
	files := wire.TLSFiles{Cert: fc.Cert, Key: fc.Key, PeerCert: fc.PeerCert}
	if fc.Role == 0 {
		ln, err := wire.ListenTLS(fc.Listen, files)
		if err != nil {
			return nil, err
		}
		defer ln.Close()
		c, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		// The server-side TLS handshake is lazy; drive it now so an
		// authentication failure surfaces here, not as a protocol error.
		if hs, ok := c.(interface{ Handshake() error }); ok {
			if err := hs.Handshake(); err != nil {
				c.Close()
				return nil, fmt.Errorf("tls handshake: %w", err)
			}
		}
		return wire.NewNetConn(c, maxFrame), nil
	}
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		c, err := wire.DialTLS(fc.Peer, files)
		if err == nil {
			return wire.NewNetConn(c, maxFrame), nil
		}
		lastErr = err
		time.Sleep(100 * time.Millisecond)
	}
	return nil, fmt.Errorf("dialing %s: %w", fc.Peer, lastErr)
}

func runParty(configPath, outPath string) error {
	b, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var fc fileConfig
	if err := json.Unmarshal(b, &fc); err != nil {
		return fmt.Errorf("parsing %s: %w", configPath, err)
	}
	if err := fc.sessionConfig().Validate(); err != nil {
		return err
	}
	conn, err := connect(fc)
	if err != nil {
		return err
	}
	defer conn.Close()

	rep, err := party.Run(fc.sessionConfig(), conn)
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}

// reservePort asks the kernel for a free localhost port and releases it for
// the child listener. The tiny reuse window is acceptable in a smoke run;
// the dial retry absorbs a slow child start.
func reservePort() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

func writeConfig(path string, fc fileConfig) error {
	b, err := json.MarshalIndent(fc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func runSmoke(benchPath string, tolerance float64, steps int, seed int64) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "incshrink-wire-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	cert0, key0, err := wire.GenerateCert(dir, "party0")
	if err != nil {
		return err
	}
	cert1, key1, err := wire.GenerateCert(dir, "party1")
	if err != nil {
		return err
	}
	addr, err := reservePort()
	if err != nil {
		return err
	}

	base := fileConfig{Seed: seed, Steps: steps}
	fc0, fc1 := base, base
	fc0.Role, fc0.Listen, fc0.Cert, fc0.Key, fc0.PeerCert = 0, addr, cert0, key0, cert1
	fc1.Role, fc1.Peer, fc1.Cert, fc1.Key, fc1.PeerCert = 1, addr, cert1, key1, cert0

	paths := [2]string{filepath.Join(dir, "party0.json"), filepath.Join(dir, "party1.json")}
	outs := [2]string{filepath.Join(dir, "report0.json"), filepath.Join(dir, "report1.json")}
	if err := writeConfig(paths[0], fc0); err != nil {
		return err
	}
	if err := writeConfig(paths[1], fc1); err != nil {
		return err
	}

	var procs [2]*exec.Cmd
	for i := range procs {
		procs[i] = exec.Command(exe, "-config", paths[i], "-out", outs[i])
		procs[i].Stderr = os.Stderr
		if err := procs[i].Start(); err != nil {
			return fmt.Errorf("starting party %d: %w", i, err)
		}
	}
	for i := range procs {
		if err := procs[i].Wait(); err != nil {
			return fmt.Errorf("party %d: %w", i, err)
		}
	}

	var measured [2]*party.Report
	for i := range measured {
		b, err := os.ReadFile(outs[i])
		if err != nil {
			return err
		}
		var rep party.Report
		if err := json.Unmarshal(b, &rep); err != nil {
			return fmt.Errorf("parsing report %d: %w", i, err)
		}
		measured[i] = &rep
	}

	// In-process loopback reference: the networked run must match it on
	// every observable.
	ref0, ref1, err := party.RunLoopbackPair(party.Config{Seed: seed, Steps: steps, SnapshotAt: -1})
	if err != nil {
		return fmt.Errorf("loopback reference: %w", err)
	}
	for i, pair := range [2][2]*party.Report{{ref0, measured[0]}, {ref1, measured[1]}} {
		if ok, field := party.Equivalent(pair[0], pair[1]); !ok {
			return fmt.Errorf("role %d: TLS run diverges from loopback reference on %s", i, field)
		}
	}

	// Measured wire cost must sit within tolerance of the closed-form
	// prediction (it is exact for a correct implementation: the conn counts
	// protocol frames, not TLS records).
	check := func(name string, got, want uint64) error {
		dev := relDev(got, want)
		if dev > tolerance {
			return fmt.Errorf("%s: measured %d vs predicted %d (deviation %.3f > tolerance %.3f)", name, got, want, dev, tolerance)
		}
		return nil
	}
	for i, rep := range measured {
		if err := check(fmt.Sprintf("role %d rounds", i), rep.WireRounds, rep.PredictedRounds); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("role %d bytes", i), rep.WireBytes, rep.PredictedBytes); err != nil {
			return err
		}
	}

	bench := map[string]any{
		"config": map[string]any{"steps": steps, "seed": seed},
		"wire": map[string]any{
			"measured_rounds":  measured[0].WireRounds,
			"measured_bytes":   measured[0].WireBytes,
			"predicted_rounds": measured[0].PredictedRounds,
			"predicted_bytes":  measured[0].PredictedBytes,
			"rounds_ratio":     ratio(measured[0].WireRounds, measured[0].PredictedRounds),
			"bytes_ratio":      ratio(measured[0].WireBytes, measured[0].PredictedBytes),
			"gmw_and_gates":    measured[0].GMWANDGates,
			"opened_values":    len(measured[0].Opened),
		},
	}
	b, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(benchPath, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wire smoke ok: 2 processes over %s, %d rounds, %d bytes per party (prediction exact: %v); wrote %s\n",
		addr, measured[0].WireRounds, measured[0].WireBytes,
		measured[0].WireRounds == measured[0].PredictedRounds && measured[0].WireBytes == measured[0].PredictedBytes,
		benchPath)
	return nil
}

func relDev(got, want uint64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := float64(got) - float64(want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}

func ratio(got, want uint64) float64 {
	if want == 0 {
		return 0
	}
	return float64(got) / float64(want)
}
