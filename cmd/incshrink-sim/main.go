// Command incshrink-sim runs IncShrink deployments over a synthetic workload
// and reports progress plus final metrics — useful for exploring a single
// configuration interactively rather than sweeping.
//
// Usage:
//
//	incshrink-sim -workload tpcds -engine DP-Timer -steps 400 -eps 1.5
//	incshrink-sim -workload cpdb -engine DP-ANT -steps 600 -report 50
//	incshrink-sim -workload tpcds -engine all -workers 4
//
// With a single -engine the run is interactive: a progress line every
// -report steps. With a comma-separated list (or "all") the engines run
// concurrently on -workers goroutines over one shared trace and print their
// final metrics in list order; results are deterministic for a fixed seed at
// any worker count. Ctrl-C aborts a concurrent run without printing metrics
// (a second Ctrl-C exits immediately).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"

	"incshrink/internal/core"
	"incshrink/internal/runner"
	"incshrink/internal/sim"
	"incshrink/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "tpcds", "workload: tpcds or cpdb (optionally -sparse/-burst)")
		engine  = flag.String("engine", "DP-Timer", "engine, comma-separated list, or all: DP-Timer, DP-ANT, OTM, EP, NM")
		steps   = flag.Int("steps", 400, "horizon in time steps")
		seed    = flag.Int64("seed", 2022, "random seed")
		eps     = flag.Float64("eps", 1.5, "privacy parameter epsilon")
		omega   = flag.Int("omega", 0, "truncation bound (0 = dataset default)")
		budget  = flag.Int("b", 0, "contribution budget (0 = dataset default)")
		updateT = flag.Int("T", 0, "sDPTimer interval (0 = dataset default)")
		theta   = flag.Float64("theta", 30, "sDPANT threshold")
		report  = flag.Int("report", 100, "progress line every n steps (single engine only)")
		workers = flag.Int("workers", 0, "concurrent engines when several are requested (0 = GOMAXPROCS)")
	)
	flag.Parse()

	wl, err := pickWorkload(*wlName, *steps, *seed)
	if err != nil {
		fail(err)
	}
	tr, err := workload.Generate(wl)
	if err != nil {
		fail(err)
	}
	cfg := core.DefaultConfig(wl, *seed)
	cfg.Epsilon = *eps
	cfg.Theta = *theta
	if *omega > 0 {
		cfg.Omega = *omega
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *updateT > 0 {
		cfg.T = *updateT
	}
	cfg.PruneTo = core.PruneBound(cfg, wl)

	kinds, err := pickEngines(*engine)
	if err != nil {
		fail(err)
	}
	fmt.Printf("workload=%s engines=%s steps=%d eps=%g omega=%d b=%d T=%d theta=%g\n",
		wl.Name, *engine, *steps, *eps, cfg.Omega, cfg.Budget, cfg.T, cfg.Theta)

	if len(kinds) == 1 {
		runInteractive(kinds[0], cfg, wl, tr, *report)
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// After the first interrupt cancels the run, a second Ctrl-C kills the
	// process via default signal handling.
	context.AfterFunc(ctx, stop)
	results, err := sim.RunKinds(ctx, kinds, cfg, tr, sim.Options{}, *workers)
	if err != nil {
		fail(err)
	}
	for _, r := range results {
		fmt.Printf("\n== %s ==\n", r.Engine)
		fmt.Printf("  avg L1 error %.2f (max %.0f, rel %.4f), avg QET %.6fs\n",
			r.AvgL1, r.MaxL1, r.AvgRel, r.AvgQET)
		printMetrics(r.Metrics)
	}
}

// runInteractive drives one engine step by step with periodic progress
// lines — the single-engine exploration mode. The engine's seed is derived
// exactly as sim.RunKinds derives it, so a single-engine run reports the
// same numbers as that engine's row in a multi-engine run at the same seed.
func runInteractive(kind sim.EngineKind, cfg core.Config, wl workload.Config, tr *workload.Trace, report int) {
	cfg.Seed = runner.DeriveSeed(cfg.Seed, string(kind))
	e, err := sim.Build(kind, cfg, wl)
	if err != nil {
		fail(err)
	}
	truth := 0
	for _, st := range tr.Steps {
		e.Step(st)
		truth += st.NewPairs
		if report > 0 && (st.T+1)%report == 0 {
			res, qet := e.Query()
			fmt.Printf("t=%4d  truth=%6d  view-answer=%6d  |err|=%5.0f  QET=%.6fs\n",
				st.T, truth, res, math.Abs(float64(truth-res)), qet)
		}
	}
	fmt.Printf("\nfinal metrics:\n")
	printMetrics(e.Metrics())
}

func printMetrics(m core.Metrics) {
	fmt.Printf("  view: %d real / %d slots (%d bytes), %d updates, %d real tuples recycled\n",
		m.ViewReal, m.ViewLen, m.ViewBytes, m.Updates, m.LostReal)
	fmt.Printf("  cache: %d slots now, peak %d\n", m.CacheLen, m.CacheMax)
	fmt.Printf("  avg transform %.4fs (%d invocations), avg shrink %.4fs, avg QET %.6fs\n",
		m.AvgTransformSecs(), m.Transforms, m.AvgShrinkSecs(), m.AvgQuerySecs())
	fmt.Printf("  total simulated MPC time %.2fs, total query time %.4fs\n",
		m.TotalMPCSecs, m.QuerySecs)
}

func pickEngines(spec string) ([]sim.EngineKind, error) {
	if spec == "all" {
		return sim.AllKinds, nil
	}
	var kinds []sim.EngineKind
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		kind := sim.EngineKind(name)
		found := false
		for _, k := range sim.AllKinds {
			if k == kind {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown engine %q", name)
		}
		kinds = append(kinds, kind)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("no engine selected")
	}
	return kinds, nil
}

func pickWorkload(name string, steps int, seed int64) (workload.Config, error) {
	switch name {
	case "tpcds":
		return workload.TPCDS(steps, seed), nil
	case "tpcds-sparse":
		return workload.Sparse(workload.TPCDS(steps, seed)), nil
	case "tpcds-burst":
		return workload.Burst(workload.TPCDS(steps, seed)), nil
	case "cpdb":
		return workload.CPDB(steps, seed), nil
	case "cpdb-sparse":
		return workload.Sparse(workload.CPDB(steps, seed)), nil
	case "cpdb-burst":
		return workload.Burst(workload.CPDB(steps, seed)), nil
	default:
		return workload.Config{}, fmt.Errorf("unknown workload %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
