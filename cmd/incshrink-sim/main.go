// Command incshrink-sim runs a single IncShrink deployment over a synthetic
// workload and reports per-interval progress plus final metrics — useful for
// exploring a single configuration interactively rather than sweeping.
//
// Usage:
//
//	incshrink-sim -workload tpcds -engine DP-Timer -steps 400 -eps 1.5
//	incshrink-sim -workload cpdb -engine DP-ANT -steps 600 -report 50
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"incshrink/internal/core"
	"incshrink/internal/sim"
	"incshrink/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "tpcds", "workload: tpcds or cpdb (optionally -sparse/-burst)")
		engine  = flag.String("engine", "DP-Timer", "engine: DP-Timer, DP-ANT, OTM, EP, NM")
		steps   = flag.Int("steps", 400, "horizon in time steps")
		seed    = flag.Int64("seed", 2022, "random seed")
		eps     = flag.Float64("eps", 1.5, "privacy parameter epsilon")
		omega   = flag.Int("omega", 0, "truncation bound (0 = dataset default)")
		budget  = flag.Int("b", 0, "contribution budget (0 = dataset default)")
		updateT = flag.Int("T", 0, "sDPTimer interval (0 = dataset default)")
		theta   = flag.Float64("theta", 30, "sDPANT threshold")
		report  = flag.Int("report", 100, "progress line every n steps")
	)
	flag.Parse()

	wl, err := pickWorkload(*wlName, *steps, *seed)
	if err != nil {
		fail(err)
	}
	tr, err := workload.Generate(wl)
	if err != nil {
		fail(err)
	}
	cfg := core.DefaultConfig(wl, *seed)
	cfg.Epsilon = *eps
	cfg.Theta = *theta
	if *omega > 0 {
		cfg.Omega = *omega
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *updateT > 0 {
		cfg.T = *updateT
	}
	cfg.PruneTo = core.PruneBound(cfg, wl)

	e, err := sim.Build(sim.EngineKind(*engine), cfg, wl)
	if err != nil {
		fail(err)
	}

	fmt.Printf("workload=%s engine=%s steps=%d eps=%g omega=%d b=%d T=%d theta=%g\n",
		wl.Name, e.Name(), *steps, *eps, cfg.Omega, cfg.Budget, cfg.T, cfg.Theta)
	truth := 0
	for _, st := range tr.Steps {
		e.Step(st)
		truth += st.NewPairs
		if *report > 0 && (st.T+1)%*report == 0 {
			res, qet := e.Query()
			fmt.Printf("t=%4d  truth=%6d  view-answer=%6d  |err|=%5.0f  QET=%.6fs\n",
				st.T, truth, res, math.Abs(float64(truth-res)), qet)
		}
	}
	m := e.Metrics()
	fmt.Printf("\nfinal metrics:\n")
	fmt.Printf("  view: %d real / %d slots (%d bytes), %d updates, %d real tuples recycled\n",
		m.ViewReal, m.ViewLen, m.ViewBytes, m.Updates, m.LostReal)
	fmt.Printf("  cache: %d slots now, peak %d\n", m.CacheLen, m.CacheMax)
	fmt.Printf("  avg transform %.4fs (%d invocations), avg shrink %.4fs, avg QET %.6fs\n",
		m.AvgTransformSecs(), m.Transforms, m.AvgShrinkSecs(), m.AvgQuerySecs())
	fmt.Printf("  total simulated MPC time %.2fs, total query time %.4fs\n",
		m.TotalMPCSecs, m.QuerySecs)
}

func pickWorkload(name string, steps int, seed int64) (workload.Config, error) {
	switch name {
	case "tpcds":
		return workload.TPCDS(steps, seed), nil
	case "tpcds-sparse":
		return workload.Sparse(workload.TPCDS(steps, seed)), nil
	case "tpcds-burst":
		return workload.Burst(workload.TPCDS(steps, seed)), nil
	case "cpdb":
		return workload.CPDB(steps, seed), nil
	case "cpdb-sparse":
		return workload.Sparse(workload.CPDB(steps, seed)), nil
	case "cpdb-burst":
		return workload.Burst(workload.CPDB(steps, seed)), nil
	default:
		return workload.Config{}, fmt.Errorf("unknown workload %q", name)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
