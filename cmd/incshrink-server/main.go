// Command incshrink-server is the multi-tenant serving front end: it hosts
// many named IncShrink views behind an HTTP JSON API, with per-view
// single-writer ingestion and a concurrent read path (internal/serve).
//
// Usage:
//
//	incshrink-server -addr :8080 -mailbox 16 -ingest-workers 0
//
// A curl session against a running server:
//
//	curl -X POST localhost:8080/v1/views -d '{"name":"sales","within":10,"epsilon":1.5,"seed":42}'
//	curl -X POST localhost:8080/v1/views/sales/advance -d '{"left":[[1,0]],"right":[[1,1]]}'
//	curl localhost:8080/v1/views/sales/count
//	curl -X POST localhost:8080/v1/views/sales/count \
//	     -d '{"where":[{"col":"right.time","minus":"left.time","op":"<=","val":3}]}'
//	curl localhost:8080/v1/views/sales/stats
//
// SIGINT/SIGTERM triggers graceful shutdown: in-flight requests finish,
// admitted uploads drain, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incshrink/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		mailbox = flag.Int("mailbox", 16, "per-view ingest queue depth (full queue -> 503)")
		workers = flag.Int("ingest-workers", 0, "max views advancing simultaneously (0 = GOMAXPROCS)")
		grace   = flag.Duration("grace", 10*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := serve.NewRegistry(serve.Config{MailboxDepth: *mailbox, IngestWorkers: *workers})
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(reg)}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("incshrink-server listening on %s (mailbox=%d, ingest-workers=%d)", *addr, *mailbox, *workers)

	select {
	case <-ctx.Done():
		log.Printf("shutting down (grace %s)...", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		if err := reg.Close(sctx); err != nil {
			log.Printf("registry close: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
