// Command incshrink-server is the multi-tenant serving front end: it hosts
// many named IncShrink views behind an HTTP JSON API, with per-view
// single-writer ingestion and a concurrent read path (internal/serve).
//
// Usage:
//
//	incshrink-server -addr :8080 -mailbox 16 -high-water 12 -ingest-batch 8 \
//	    -shards 16 -ingest-workers 0 -data /var/lib/incshrink -checkpoint-every 100
//
// A curl session against a running server:
//
//	curl -X POST localhost:8080/v1/views -d '{"name":"sales","within":10,"epsilon":1.5,"seed":42}'
//	curl -X POST localhost:8080/v1/views/sales/advance -d '{"left":[[1,0]],"right":[[1,1]]}'
//	curl -X POST localhost:8080/v1/views/sales/advance-batch \
//	     -d '{"steps":[{"left":[[2,1]],"right":[]},{"left":[[3,2]],"right":[[3,2]]}]}'
//	curl localhost:8080/v1/views/sales/count
//	curl -X POST localhost:8080/v1/views/sales/count \
//	     -d '{"where":[{"col":"right.time","minus":"left.time","op":"<=","val":3}]}'
//	curl localhost:8080/v1/views/sales/stats
//	curl -X POST localhost:8080/v1/views/sales/snapshot
//
// With -data set the server is durable: every view checkpoints to
// <data>/<name>.snap (periodically, on demand via the snapshot endpoint,
// and at shutdown), and a restarting server restores every checkpointed
// view before accepting traffic — the restored state is bit-identical to
// the moment of the checkpoint, including the DP protocols' randomness
// positions, so the privacy guarantee over the whole update history is
// unbroken by the restart.
//
// SIGINT/SIGTERM triggers graceful shutdown: in-flight requests finish,
// admitted uploads drain, final checkpoints are written, then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incshrink/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		mailbox   = flag.Int("mailbox", 16, "per-view ingest queue capacity, in requests")
		highWater = flag.Int("high-water", 0, "backpressure threshold in queued steps: at or past it uploads get 503 + depth-aware Retry-After (0 = mailbox capacity)")
		batch     = flag.Int("ingest-batch", 8, "max backlogged steps coalesced into one engine batch (1 disables coalescing)")
		maxBatch  = flag.Int("max-batch-steps", 512, "max steps one advance-batch request may carry (larger -> 400)")
		shards    = flag.Int("shards", 16, "registry hash shards (lifecycle ops on distinct views never contend)")
		workers   = flag.Int("ingest-workers", 0, "max views advancing simultaneously (0 = GOMAXPROCS)")
		grace     = flag.Duration("grace", 10*time.Second, "graceful shutdown budget")
		dataDir   = flag.String("data", "", "data directory for view checkpoints (empty = not durable)")
		cpEvery   = flag.Int("checkpoint-every", 100, "checkpoint a view every N applied uploads (needs -data; 0 = only explicit/shutdown checkpoints)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := serve.Config{
		MailboxDepth:  *mailbox,
		HighWater:     *highWater,
		IngestBatch:   *batch,
		MaxBatchSteps: *maxBatch,
		Shards:        *shards,
		IngestWorkers: *workers,
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("creating data directory: %v", err)
		}
		cfg.DataDir = *dataDir
		cfg.CheckpointEvery = *cpEvery
	}
	reg := serve.NewRegistry(cfg)
	if cfg.DataDir != "" {
		// Restore-on-boot: every checkpointed view comes back before the
		// listener opens, bit-identical to its last checkpoint.
		restored, err := reg.RestoreAll()
		if err != nil {
			// Healthy views are already serving; name the broken snapshots
			// and keep going rather than refusing to start.
			log.Printf("restore: %v", err)
		}
		if len(restored) > 0 {
			log.Printf("restored %d view(s) from %s: %v", len(restored), cfg.DataDir, restored)
		}
	}
	srv := &http.Server{Addr: *addr, Handler: serve.NewHandler(reg)}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("incshrink-server listening on %s (mailbox=%d, ingest-batch=%d, shards=%d, ingest-workers=%d, data=%q)",
		*addr, *mailbox, *batch, *shards, *workers, cfg.DataDir)

	select {
	case <-ctx.Done():
		log.Printf("shutting down (grace %s)...", *grace)
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
		drained := true
		if err := reg.Close(sctx); err != nil {
			drained = false
			log.Printf("registry close: %v", err)
		}
		if cfg.DataDir != "" {
			// Final checkpoints. After a clean drain the on-disk state
			// matches exactly what every view last acknowledged; if the
			// grace period expired mid-drain, the checkpoints are still
			// consistent post-step states, but uploads the loops apply
			// after this point are acknowledged without being captured.
			if err := reg.CheckpointAll(); err != nil {
				log.Printf("final checkpoint: %v", err)
			} else if drained {
				log.Printf("checkpointed %d view(s) to %s", reg.Len(), cfg.DataDir)
			} else {
				log.Printf("checkpointed %d view(s) to %s with mailboxes still draining; late-acknowledged uploads may not be captured", reg.Len(), cfg.DataDir)
			}
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
}
