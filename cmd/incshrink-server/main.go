// Command incshrink-server is the multi-tenant serving front end: it hosts
// many named IncShrink views behind an HTTP JSON API, with per-view
// single-writer ingestion and a concurrent read path (internal/serve).
//
// Usage:
//
//	incshrink-server -addr :8080 -ops-addr :9090 -mailbox 16 -high-water 12 \
//	    -ingest-batch 8 -shards 16 -ingest-workers 0 \
//	    -data /var/lib/incshrink -checkpoint-every 100 -log-level info
//
// A curl session against a running server:
//
//	curl -X POST localhost:8080/v1/views -d '{"name":"sales","within":10,"epsilon":1.5,"seed":42}'
//	curl -X POST localhost:8080/v1/views/sales/advance -d '{"left":[[1,0]],"right":[[1,1]]}'
//	curl -X POST localhost:8080/v1/views/sales/advance-batch \
//	     -d '{"steps":[{"left":[[2,1]],"right":[]},{"left":[[3,2]],"right":[[3,2]]}]}'
//	curl localhost:8080/v1/views/sales/count
//	curl -X POST localhost:8080/v1/views/sales/count \
//	     -d '{"where":[{"col":"right.time","minus":"left.time","op":"<=","val":3}]}'
//	curl localhost:8080/v1/views/sales/stats
//	curl -X POST localhost:8080/v1/views/sales/snapshot
//
// With -ops-addr set, a second private listener serves the operations
// surface: GET /metrics (Prometheus text format, every layer's families —
// serve queue/batch/latency metrics, per-view core engine gauges, and the
// MPC predicted-vs-measured cost accounting), GET /debug/traces (the
// bounded in-memory span ring as JSON), and /debug/pprof/* (the stdlib
// profiler). Keep the ops port off the tenant network.
//
// Logs are JSON lines on stderr (log/slog); every API request is logged
// with its trace ID, which is also echoed to the client in X-Trace-Id and
// attached to the ingest spans the request leaves in /debug/traces.
//
// With -data set the server is durable: every view checkpoints to
// <data>/<name>.snap (periodically, on demand via the snapshot endpoint,
// and at shutdown), and a restarting server restores every checkpointed
// view before accepting traffic — the restored state is bit-identical to
// the moment of the checkpoint, including the DP protocols' randomness
// positions, so the privacy guarantee over the whole update history is
// unbroken by the restart. While the restore sweep runs, GET /healthz
// reports 503; it also degrades to 503 when any view's ingest queue
// reaches the high-water mark (the same threshold that bounces uploads).
//
// SIGINT/SIGTERM triggers graceful shutdown: in-flight requests finish,
// admitted uploads drain, final checkpoints are written, then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"incshrink/internal/oblivious"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address for the tenant API")
		opsAddr   = flag.String("ops-addr", "", "listen address for the private ops surface: /metrics, /debug/traces, /debug/pprof (empty = disabled)")
		mailbox   = flag.Int("mailbox", 16, "per-view ingest queue capacity, in requests")
		highWater = flag.Int("high-water", 0, "backpressure threshold in queued steps: at or past it uploads get 503 + depth-aware Retry-After (0 = mailbox capacity)")
		batch     = flag.Int("ingest-batch", 8, "max backlogged steps coalesced into one engine batch (1 disables coalescing)")
		maxBatch  = flag.Int("max-batch-steps", 512, "max steps one advance-batch request may carry (larger -> 400)")
		shards    = flag.Int("shards", 16, "registry hash shards (lifecycle ops on distinct views never contend)")
		workers   = flag.Int("ingest-workers", 0, "max views advancing simultaneously (0 = GOMAXPROCS)")
		grace     = flag.Duration("grace", 10*time.Second, "graceful shutdown budget")
		dataDir   = flag.String("data", "", "data directory for view checkpoints (empty = not durable)")
		cpEvery   = flag.Int("checkpoint-every", 100, "checkpoint a view every N applied uploads (needs -data; 0 = only explicit/shutdown checkpoints)")
		traceBuf  = flag.Int("trace-buffer", 4096, "spans kept in the in-memory trace ring served at /debug/traces")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
		sortWkrs  = flag.Int("sort-workers", 0, "goroutines per oblivious sort's compare-exchange layers (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
	)
	flag.Parse()
	oblivious.SetSortWorkers(*sortWkrs)

	level, err := parseLevel(*logLevel)
	if err != nil {
		slog.Error("flags", slog.Any("error", err))
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	a, err := buildApp(appConfig{
		Mailbox:         *mailbox,
		HighWater:       *highWater,
		IngestBatch:     *batch,
		MaxBatchSteps:   *maxBatch,
		Shards:          *shards,
		IngestWorkers:   *workers,
		DataDir:         *dataDir,
		CheckpointEvery: *cpEvery,
		TraceBuffer:     *traceBuf,
		LogLevel:        level,
	}, os.Stderr)
	if err != nil {
		slog.Error("startup", slog.Any("error", err))
		os.Exit(1)
	}
	log := a.logger
	if len(a.restored) > 0 {
		log.Info("restored views", slog.Int("count", len(a.restored)),
			slog.String("data", *dataDir), slog.Any("views", a.restored))
	}

	srv := &http.Server{Addr: *addr, Handler: a.api}
	errc := make(chan error, 2)
	go func() { errc <- srv.ListenAndServe() }()

	var opsSrv *http.Server
	if *opsAddr != "" {
		opsSrv = &http.Server{Addr: *opsAddr, Handler: a.ops}
		go func() { errc <- opsSrv.ListenAndServe() }()
		log.Info("ops listening", slog.String("addr", *opsAddr))
	}
	log.Info("incshrink-server listening",
		slog.String("addr", *addr),
		slog.Int("mailbox", *mailbox),
		slog.Int("ingest_batch", *batch),
		slog.Int("shards", *shards),
		slog.Int("ingest_workers", *workers),
		slog.String("data", *dataDir))

	select {
	case <-ctx.Done():
		log.Info("shutting down", slog.Duration("grace", *grace))
		sctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Warn("http shutdown", slog.Any("error", err))
		}
		if opsSrv != nil {
			if err := opsSrv.Shutdown(sctx); err != nil {
				log.Warn("ops shutdown", slog.Any("error", err))
			}
		}
		drained := true
		if err := a.reg.Close(sctx); err != nil {
			drained = false
			log.Warn("registry close", slog.Any("error", err))
		}
		if *dataDir != "" {
			// Final checkpoints. After a clean drain the on-disk state
			// matches exactly what every view last acknowledged; if the
			// grace period expired mid-drain, the checkpoints are still
			// consistent post-step states, but uploads the loops apply
			// after this point are acknowledged without being captured.
			if err := a.reg.CheckpointAll(); err != nil {
				log.Error("final checkpoint", slog.Any("error", err))
			} else if drained {
				log.Info("checkpointed views", slog.Int("count", a.reg.Len()), slog.String("data", *dataDir))
			} else {
				log.Warn("checkpointed views with mailboxes still draining; late-acknowledged uploads may not be captured",
					slog.Int("count", a.reg.Len()), slog.String("data", *dataDir))
			}
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Error("listener", slog.Any("error", err))
			os.Exit(1)
		}
	}
}
