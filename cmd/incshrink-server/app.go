package main

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"

	"incshrink/internal/obs"
	"incshrink/internal/serve"
)

// appConfig is the parsed command line — everything the server needs that
// isn't a listener address, so tests can build the exact production wiring
// in-process and attach httptest listeners instead.
type appConfig struct {
	Mailbox         int
	HighWater       int
	IngestBatch     int
	MaxBatchSteps   int
	Shards          int
	IngestWorkers   int
	DataDir         string
	CheckpointEvery int
	TraceBuffer     int
	LogLevel        slog.Level
}

// app is the assembled server: the registry, the public API handler, and
// the private ops handler (/metrics, /debug/pprof, /debug/traces). The two
// handlers are meant for separate listeners — the ops side exposes
// profiling endpoints and must not share the tenant-facing port.
type app struct {
	reg     *serve.Registry
	metrics *obs.Registry
	traces  *obs.TraceLog
	logger  *slog.Logger
	api     http.Handler
	ops     http.Handler
	// restored names the views recovered from the data directory at boot.
	restored []string
}

// buildApp wires the full observability stack: a metrics registry and trace
// ring shared by the serving layer and the ops endpoints, and a JSON logger
// whose access lines carry the request trace IDs. Restore-on-boot runs here
// (before any listener opens) so a returned app is ready to serve.
func buildApp(cfg appConfig, logDst io.Writer) (*app, error) {
	logger := slog.New(slog.NewJSONHandler(logDst, &slog.HandlerOptions{Level: cfg.LogLevel}))
	metrics := obs.NewRegistry()
	traces := obs.NewTraceLog(cfg.TraceBuffer)

	scfg := serve.Config{
		MailboxDepth:  cfg.Mailbox,
		HighWater:     cfg.HighWater,
		IngestBatch:   cfg.IngestBatch,
		MaxBatchSteps: cfg.MaxBatchSteps,
		Shards:        cfg.Shards,
		IngestWorkers: cfg.IngestWorkers,
		Metrics:       metrics,
		Traces:        traces,
		Logger:        logger,
	}
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("creating data directory: %w", err)
		}
		scfg.DataDir = cfg.DataDir
		scfg.CheckpointEvery = cfg.CheckpointEvery
	}

	a := &app{
		reg:     serve.NewRegistry(scfg),
		metrics: metrics,
		traces:  traces,
		logger:  logger,
	}
	if scfg.DataDir != "" {
		// Restore-on-boot: every checkpointed view comes back before the
		// listener opens, bit-identical to its last checkpoint.
		restored, err := a.reg.RestoreAll()
		if err != nil {
			// Healthy views are already serving; name the broken snapshots
			// and keep going rather than refusing to start.
			logger.Error("restore", slog.Any("error", err))
		}
		a.restored = restored
	}
	a.api = serve.NewHandler(a.reg)
	a.ops = opsHandler(metrics, traces)
	return a, nil
}

// opsHandler builds the private operations mux: Prometheus metrics, the
// trace ring dump, and the stdlib profiler. It hangs the pprof handlers on
// an explicit mux (never http.DefaultServeMux) so nothing the tenant-facing
// API serves can reach them.
func opsHandler(metrics *obs.Registry, traces *obs.TraceLog) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", metrics.Handler())
	mux.Handle("GET /debug/traces", traces.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// parseLevel maps the -log-level flag to a slog level.
func parseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
	return l, nil
}
