package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestObsSmoke is the in-process form of `make obs-smoke`: boot the exact
// production wiring (buildApp), drive a short tenant session through the
// API listener, then scrape the ops listener and assert the key metric
// families from every layer are present, the trace ring holds the session's
// spans, pprof answers, and the access log carries trace IDs.
func TestObsSmoke(t *testing.T) {
	logs := &strings.Builder{}
	a, err := buildApp(appConfig{
		Mailbox:       16,
		IngestBatch:   8,
		MaxBatchSteps: 512,
		Shards:        4,
		TraceBuffer:   256,
		LogLevel:      slog.LevelInfo,
		DataDir:       t.TempDir(),
	}, logs)
	if err != nil {
		t.Fatal(err)
	}
	defer a.reg.Close(context.Background())

	api := httptest.NewServer(a.api)
	defer api.Close()
	ops := httptest.NewServer(a.ops)
	defer ops.Close()

	do := func(method, url, body string) (int, string) {
		req, err := http.NewRequest(method, url, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := api.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := do("POST", api.URL+"/v1/views", `{"name":"smoke","within":5,"epsilon":1.5,"t":3,"max_left":8,"max_right":8,"seed":7}`); code != http.StatusCreated {
		t.Fatalf("create: %d %s", code, body)
	}
	for i := 0; i < 4; i++ {
		if code, body := do("POST", api.URL+"/v1/views/smoke/advance", `{"left":[[1,0]],"right":[[1,1]]}`); code != http.StatusOK {
			t.Fatalf("advance: %d %s", code, body)
		}
	}
	if code, body := do("GET", api.URL+"/v1/views/smoke/count", ""); code != http.StatusOK {
		t.Fatalf("count: %d %s", code, body)
	}
	if code, body := do("POST", api.URL+"/v1/views/smoke/snapshot", ""); code != http.StatusOK {
		t.Fatalf("snapshot: %d %s", code, body)
	}

	// /healthz reflects the serving state through the same middleware.
	if code, body := do("GET", api.URL+"/healthz", ""); code != http.StatusOK || !strings.Contains(body, `"ready":true`) {
		t.Fatalf("healthz: %d %s", code, body)
	}

	// The ops scrape must contain families from every instrumented layer.
	resp, err := ops.Client().Get(ops.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	scrape, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, family := range []string{
		"incshrink_serve_advances_total",
		"incshrink_serve_queue_depth",
		"incshrink_serve_checkpoint_seconds",
		"incshrink_core_phase_seconds",
		"incshrink_core_steps_total",
		"incshrink_mpc_predicted_vs_measured",
		"incshrink_http_requests_total",
		"incshrink_core_comparator_cache_hits",
		"incshrink_core_comparator_cache_misses",
		"incshrink_core_comparator_cache_pairs",
		"incshrink_core_sort_parallel_sorts",
		"incshrink_core_sort_workers",
	} {
		if !strings.Contains(string(scrape), family) {
			t.Errorf("scrape missing family %s", family)
		}
	}

	// The trace ring is served as JSON and holds the session's spans.
	resp, err = ops.Client().Get(ops.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Dropped int               `json:"dropped"`
		Spans   []json.RawMessage `json:"spans"`
	}
	err = json.NewDecoder(resp.Body).Decode(&dump)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/traces: %v", err)
	}
	if len(dump.Spans) == 0 {
		t.Error("/debug/traces: no spans after a session")
	}

	// pprof is reachable on the ops mux (and only there).
	resp, err = ops.Client().Get(ops.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: %d", resp.StatusCode)
	}
	if code, _ := do("GET", api.URL+"/debug/pprof/cmdline", ""); code == http.StatusOK {
		t.Error("pprof reachable on the tenant API listener")
	}

	if !strings.Contains(logs.String(), `"trace":"`) {
		t.Errorf("access log missing trace IDs: %s", logs.String())
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"warn":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := parseLevel(in)
		if err != nil || got != want {
			t.Errorf("parseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseLevel("loud"); err == nil {
		t.Error("parseLevel accepted garbage")
	}
}
