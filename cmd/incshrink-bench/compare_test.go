package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, name, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestClassify(t *testing.T) {
	for path, want := range map[string]direction{
		"advance.ns_per_op":                   dirLowerBetter,
		"advance.allocs_per_op":               dirLowerBetter,
		"advance.bytes_per_op":                dirLowerBetter,
		"default.per_step.elapsed_seconds":    dirLowerBetter,
		"default.advance_latency.p99_seconds": dirLowerBetter,
		"default.per_step.advances_per_sec":   dirHigherBetter,
		"batch_per_step_speedup":              dirHigherBetter,
		"advance_allocs_improvement":          dirHigherBetter,
		"default.throughput_ratio":            dirHigherBetter,
		"advance.ops":                         dirNeutral,
		"steps":                               dirNeutral,
		"default.per_step.counts.load-000":    dirNeutral,
		"seed":                                dirNeutral,
	} {
		if got := classify(path); got != want {
			t.Errorf("classify(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestCompareDetectsRegression(t *testing.T) {
	old := writeReport(t, "old.json", `{
		"advance": {"ns_per_op": 1000, "allocs_per_op": 10, "ops": 5000},
		"rates": {"advances_per_sec": 2000},
		"counts": {"load-000": 42}
	}`)

	// Within threshold in both directions: no regression.
	ok := writeReport(t, "ok.json", `{
		"advance": {"ns_per_op": 1100, "allocs_per_op": 10, "ops": 9999},
		"rates": {"advances_per_sec": 1900},
		"counts": {"load-000": 42}
	}`)
	var out strings.Builder
	n, err := runCompare(old, ok, 0.15, &out)
	if err != nil || n != 0 {
		t.Fatalf("within threshold: regressions=%d err=%v\n%s", n, err, out.String())
	}

	// ns/op up 50% and throughput down 50%: two regressions; the neutral
	// iteration count moving is not one.
	bad := writeReport(t, "bad.json", `{
		"advance": {"ns_per_op": 1500, "allocs_per_op": 10, "ops": 1},
		"rates": {"advances_per_sec": 1000},
		"counts": {"load-000": 42}
	}`)
	out.Reset()
	n, err = runCompare(old, bad, 0.15, &out)
	if err != nil || n != 2 {
		t.Fatalf("past threshold: regressions=%d err=%v\n%s", n, err, out.String())
	}
	if !strings.Contains(out.String(), "! advance.ns_per_op") {
		t.Errorf("regressed leaf not marked:\n%s", out.String())
	}

	// An improvement in a lower-is-better metric is never a regression.
	better := writeReport(t, "better.json", `{
		"advance": {"ns_per_op": 100, "allocs_per_op": 2, "ops": 5000},
		"rates": {"advances_per_sec": 9000},
		"counts": {"load-000": 42}
	}`)
	out.Reset()
	if n, err = runCompare(old, better, 0.15, &out); err != nil || n != 0 {
		t.Fatalf("improvement flagged: regressions=%d err=%v\n%s", n, err, out.String())
	}
}

func TestCompareShapeDrift(t *testing.T) {
	old := writeReport(t, "old.json", `{"a": {"ns_per_op": 10}, "gone": {"ns_per_op": 5}}`)
	new_ := writeReport(t, "new.json", `{"a": {"ns_per_op": 10}, "added": {"ns_per_op": 7}}`)
	var out strings.Builder
	n, err := runCompare(old, new_, 0.15, &out)
	if err != nil || n != 0 {
		t.Fatalf("shape drift counted as regression: %d %v", n, err)
	}
	if !strings.Contains(out.String(), "- gone.ns_per_op only in") ||
		!strings.Contains(out.String(), "+ added.ns_per_op only in") {
		t.Errorf("drift not reported:\n%s", out.String())
	}
}

// TestCompareRealReports runs the diff over the checked-in reports against
// themselves: zero regressions by construction, and it pins that the real
// report shapes flatten into directional leaves at all.
func TestCompareRealReports(t *testing.T) {
	for _, name := range []string{"../../BENCH_core.json", "../../BENCH_serve.json"} {
		if _, err := os.Stat(name); err != nil {
			t.Skipf("report %s not present", name)
		}
		var out strings.Builder
		n, err := runCompare(name, name, 0.15, &out)
		if err != nil || n != 0 {
			t.Fatalf("%s vs itself: regressions=%d err=%v", name, n, err)
		}
		if !strings.Contains(out.String(), "ns_per_op") && !strings.Contains(out.String(), "_seconds") {
			t.Errorf("%s produced no directional leaves:\n%s", name, out.String())
		}
	}
}
