package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Benchmark regression diffing: `incshrink-bench -compare old.json new.json`
// reads two BENCH_*.json reports (any shape — the reports are flattened to
// dotted leaf paths), classifies each numeric leaf by its name, and reports
// the relative change. Leaves whose change exceeds -threshold in the bad
// direction are regressions, and any regression makes the command exit
// nonzero — this is the `make bench-diff` gate.
//
// Classification is by suffix convention, shared across BENCH_core.json and
// BENCH_serve.json:
//
//   - lower is better:  *ns_per_op, *allocs_per_op, *bytes_per_op, *_seconds
//   - higher is better: *_per_sec, *speedup, *improvement, *throughput_ratio
//
// Anything else (workload configuration, deterministic counts, testing.B
// iteration counts) carries no direction and is compared for information
// only — it can never fail the gate.

// direction is a metric leaf's improvement sense.
type direction int

const (
	dirNeutral direction = iota
	dirLowerBetter
	dirHigherBetter
)

// classify maps a flattened leaf path to its improvement sense.
func classify(path string) direction {
	switch {
	case strings.HasSuffix(path, "ns_per_op"),
		strings.HasSuffix(path, "allocs_per_op"),
		strings.HasSuffix(path, "bytes_per_op"),
		strings.HasSuffix(path, "_seconds"):
		return dirLowerBetter
	case strings.HasSuffix(path, "_per_sec"),
		strings.HasSuffix(path, "speedup"),
		strings.HasSuffix(path, "improvement"),
		strings.HasSuffix(path, "throughput_ratio"):
		return dirHigherBetter
	default:
		return dirNeutral
	}
}

// flatten reduces a decoded JSON document to numeric leaves keyed by dotted
// path ("default.per_step.advance_latency.p50_seconds"). Non-numeric leaves
// are dropped: strings and booleans in the reports are configuration echo,
// not measurements.
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range x {
			flatten(fmt.Sprintf("%s.%d", prefix, i), child, out)
		}
	case float64:
		out[prefix] = x
	}
}

func loadReport(path string) (map[string]float64, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	leaves := make(map[string]float64)
	flatten("", doc, leaves)
	return leaves, nil
}

// compareRow is one leaf's diff.
type compareRow struct {
	path     string
	dir      direction
	old, new float64
	// delta is the relative change (new-old)/old; worse is true when delta
	// moves against the leaf's direction by more than the threshold.
	delta float64
	worse bool
}

// runCompare diffs two benchmark reports and writes the result table to w.
// It returns the number of regressions (directional leaves whose relative
// change exceeds threshold in the bad direction).
func runCompare(oldPath, newPath string, threshold float64, w io.Writer) (int, error) {
	oldLeaves, err := loadReport(oldPath)
	if err != nil {
		return 0, err
	}
	newLeaves, err := loadReport(newPath)
	if err != nil {
		return 0, err
	}

	oldPaths := make([]string, 0, len(oldLeaves))
	for path := range oldLeaves {
		oldPaths = append(oldPaths, path)
	}
	sort.Strings(oldPaths)

	var rows []compareRow
	var onlyOld, onlyNew []string
	for _, path := range oldPaths {
		ov := oldLeaves[path]
		nv, ok := newLeaves[path]
		if !ok {
			onlyOld = append(onlyOld, path)
			continue
		}
		row := compareRow{path: path, dir: classify(path), old: ov, new: nv}
		if ov != 0 {
			row.delta = (nv - ov) / ov
			switch row.dir {
			case dirLowerBetter:
				row.worse = row.delta > threshold
			case dirHigherBetter:
				row.worse = row.delta < -threshold
			}
		}
		rows = append(rows, row)
	}
	for path := range newLeaves {
		if _, ok := oldLeaves[path]; !ok {
			onlyNew = append(onlyNew, path)
		}
	}
	sort.Strings(onlyNew)

	regressions := 0
	fmt.Fprintf(w, "comparing %s -> %s (threshold %.0f%%)\n", oldPath, newPath, threshold*100)
	for _, r := range rows {
		if r.dir == dirNeutral {
			continue
		}
		mark := " "
		if r.worse {
			mark = "!"
			regressions++
		}
		fmt.Fprintf(w, "%s %-64s %14.6g %14.6g %+7.1f%%\n", mark, r.path, r.old, r.new, r.delta*100)
	}
	for _, p := range onlyOld {
		fmt.Fprintf(w, "- %s only in %s\n", p, oldPath)
	}
	for _, p := range onlyNew {
		fmt.Fprintf(w, "+ %s only in %s\n", p, newPath)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "FAIL: %d metric(s) regressed more than %.0f%%\n", regressions, threshold*100)
	} else {
		fmt.Fprintf(w, "ok: no metric regressed more than %.0f%%\n", threshold*100)
	}
	return regressions, nil
}
