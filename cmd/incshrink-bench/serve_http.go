package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"time"

	"incshrink"
	"incshrink/internal/runner"
	"incshrink/internal/serve"
)

// The HTTP arm of the serve benchmark drives the server's actual ingest
// interface — a real loopback HTTP server built on serve.NewHandler, so
// every request pays routing, strict JSON decode, admission, the mailbox
// round trip, JSON encode and the socket round trip. That fixed
// per-request cost is exactly what POST /advance pays once per step and
// POST /advance-batch amortizes across its steps.

// httpStep builds one deterministic step for view i at time t: two left
// rows and one joining right row, sized to fit the ingest-bound block
// limits.
func httpStep(view, t int, within int64) incshrink.StepRows {
	k := int64(view)*1_000_000 + int64(2*t)
	return incshrink.StepRows{
		Left:  []incshrink.Row{{k, int64(t)}, {k + 1, int64(t)}},
		Right: []incshrink.Row{{k, int64(t) + within/2}},
	}
}

// post sends one JSON request over the wire, retrying 503s until the queue
// drains.
func post(ctx context.Context, c *http.Client, url string, body []byte) error {
	for {
		resp, err := c.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated:
			return nil
		case resp.StatusCode == http.StatusServiceUnavailable:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Millisecond):
			}
		default:
			return fmt.Errorf("POST %s: %d %s", url, resp.StatusCode, msg)
		}
	}
}

// runHTTPLoad ingests views x steps over the wire at the given batch size
// and returns a LoadReport-shaped summary (throughput fields and final
// counts filled).
func runHTTPLoad(ctx context.Context, views, steps int, seed int64, workers, batch int, def incshrink.ViewDef, opts incshrink.Options) (serve.LoadReport, error) {
	reg := serve.NewRegistry(serve.Config{IngestWorkers: workers, IngestBatch: batch})
	defer reg.Close(context.Background())
	srv := httptest.NewServer(serve.NewHandler(reg))
	defer srv.Close()
	client := srv.Client()

	cells := make([]runner.Cell[[2]int64], views) // {count, requests}
	for i := 0; i < views; i++ {
		i := i
		name := fmt.Sprintf("http-%03d", i)
		cells[i] = runner.Cell[[2]int64]{
			Key: name,
			Run: func(ctx context.Context) ([2]int64, error) {
				vopts := opts
				vopts.Seed = runner.DeriveSeed(seed, name)
				if _, err := reg.Create(name, def, vopts); err != nil {
					return [2]int64{}, err
				}
				base := srv.URL + "/v1/views/" + name
				var requests int64
				var steprun []incshrink.StepRows
				for t := 0; t < steps; t++ {
					steprun = append(steprun, httpStep(i, t, def.Within))
					if len(steprun) < batch && t != steps-1 {
						continue
					}
					var body []byte
					var err error
					url := base + "/advance"
					if batch > 1 {
						body, err = json.Marshal(serve.AdvanceBatchRequest{Steps: steprun})
						url += "-batch"
					} else {
						body, err = json.Marshal(serve.AdvanceRequest{Left: steprun[0].Left, Right: steprun[0].Right})
					}
					if err != nil {
						return [2]int64{}, err
					}
					if err := post(ctx, client, url, body); err != nil {
						return [2]int64{}, err
					}
					requests++
					steprun = steprun[:0]
				}
				resp, err := client.Get(base + "/count")
				if err != nil {
					return [2]int64{}, err
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					return [2]int64{}, fmt.Errorf("GET count: %d", resp.StatusCode)
				}
				var cr serve.CountResponse
				if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
					return [2]int64{}, err
				}
				return [2]int64{int64(cr.Count), requests}, nil
			},
		}
	}

	start := time.Now()
	runs, err := runner.Map(ctx, cells, workers)
	if err != nil {
		return serve.LoadReport{}, err
	}
	elapsed := time.Since(start).Seconds()
	rep := serve.LoadReport{
		Views: views, Steps: steps, Batch: batch, Seed: seed,
		Advances:       int64(views * steps),
		ElapsedSeconds: elapsed,
		Counts:         make(map[string]int, views),
	}
	for i, r := range runs {
		rep.Counts[fmt.Sprintf("http-%03d", i)] = int(r[0])
		rep.Requests += r[1]
	}
	if elapsed > 0 {
		rep.AdvancesPerSec = float64(rep.Advances) / elapsed
	}
	return rep, nil
}

// runHTTPPair runs the HTTP ingest path per-step and batched on one
// deployment and packages the comparison.
func runHTTPPair(ctx context.Context, views, steps int, seed int64, workers, batch int, label string, def incshrink.ViewDef, opts incshrink.Options) (ServePairReport, error) {
	pr := ServePairReport{Deployment: label}
	for _, b := range []int{1, batch} {
		rep, err := runHTTPLoad(ctx, views, steps, seed, workers, b, def, opts)
		if err != nil {
			return pr, err
		}
		if b == 1 {
			pr.PerStep = rep
		} else {
			pr.Batched = rep
		}
		fmt.Printf("serve[%s] batch=%d: %d advances (%.0f steps/s) over %d requests\n",
			label, b, rep.Advances, rep.AdvancesPerSec, rep.Requests)
	}
	return pr, pr.finish(label)
}
