package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"incshrink/internal/corebench"
)

// The core experiment microbenchmarks the engine's data plane — the
// columnar, pooled buffer path behind Advance, Count and CountWhere — at
// the paper-default deployment (Within=10, epsilon=1.5, T=10, seed 1) with
// a deterministic synthetic stream (three left rows and one joining right
// row per step, mirroring the root-package core benchmarks). It writes a
// machine-readable BENCH_core.json so the Go-side performance trajectory
// can be tracked across PRs, alongside the recorded pre-refactor
// (row-oriented []Entry data plane) baseline for context.

// CoreOpReport is one operation's measurement.
type CoreOpReport struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Ops         int     `json:"ops"`
}

// CoreReport is the machine-readable core data-plane benchmark report.
type CoreReport struct {
	Experiment string `json:"experiment"`
	Deployment string `json:"deployment"`

	Advance CoreOpReport `json:"advance"`
	// AdvanceBatch8 is the batched ingestion path at batch size 8,
	// normalized per step (one op = one step, not one 8-step batch), so it
	// is directly comparable to Advance.
	AdvanceBatch8 CoreOpReport `json:"advance_batch8"`
	Count         CoreOpReport `json:"count"`
	CountWhere    CoreOpReport `json:"count_where"`

	// Baseline is the same benchmark recorded on the pre-refactor
	// row-oriented engine (commit 5babe3b, this container class), kept in
	// the report so the improvement is visible without digging through git
	// history.
	Baseline struct {
		Commit     string       `json:"commit"`
		Advance    CoreOpReport `json:"advance"`
		Count      CoreOpReport `json:"count"`
		CountWhere CoreOpReport `json:"count_where"`
	} `json:"baseline"`

	// AdvanceAllocsImprovement is baseline allocs/op over current allocs/op
	// on the Advance hot path — the acceptance metric of the columnar
	// refactor (>= 2 required).
	AdvanceAllocsImprovement float64 `json:"advance_allocs_improvement"`
	// BatchPerStepSpeedup is Advance ns/op over AdvanceBatch8 per-step
	// ns/op: how much cheaper one ingested step is inside an 8-step batch
	// than as its own Advance call, at the engine layer (serving-layer
	// amortization is measured separately in BENCH_serve.json).
	BatchPerStepSpeedup float64 `json:"batch_per_step_speedup"`
}

func toOpReport(r testing.BenchmarkResult) CoreOpReport {
	return CoreOpReport{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Ops:         r.N,
	}
}

// runCore benchmarks the Advance/Count/CountWhere hot paths and writes the
// report to jsonOut.
func runCore(jsonOut string) error {
	var rep CoreReport
	rep.Experiment = "core"
	rep.Deployment = corebench.Deployment

	var stepErr error
	fail := func(err error) { stepErr = err }

	advance := testing.Benchmark(func(b *testing.B) {
		db, err := corebench.Open()
		if err != nil {
			fail(err)
			b.SkipNow()
		}
		for t := 0; t < 64; t++ { // steady state: pools warm, windows full
			if err := corebench.Step(db, t); err != nil {
				fail(err)
				b.SkipNow()
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := corebench.Step(db, 64+i); err != nil {
				fail(err)
				b.SkipNow()
			}
		}
	})
	if stepErr != nil {
		return stepErr
	}
	rep.Advance = toOpReport(advance)

	const batchK = 8
	advanceBatch := testing.Benchmark(func(b *testing.B) {
		db, err := corebench.Open()
		if err != nil {
			fail(err)
			b.SkipNow()
		}
		for t := 0; t < 64; t++ {
			if err := corebench.Step(db, t); err != nil {
				fail(err)
				b.SkipNow()
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.AdvanceBatch(corebench.Steps(64+batchK*i, batchK)); err != nil {
				fail(err)
				b.SkipNow()
			}
		}
	})
	if stepErr != nil {
		return stepErr
	}
	// Normalize the 8-step batch op to per-step numbers.
	rep.AdvanceBatch8 = CoreOpReport{
		NsPerOp:     float64(advanceBatch.T.Nanoseconds()) / float64(advanceBatch.N*batchK),
		AllocsPerOp: advanceBatch.AllocsPerOp() / batchK,
		BytesPerOp:  advanceBatch.AllocedBytesPerOp() / batchK,
		Ops:         advanceBatch.N * batchK,
	}

	queryDB, err := corebench.Open()
	if err != nil {
		return err
	}
	for t := 0; t < 256; t++ {
		if err := corebench.Step(queryDB, t); err != nil {
			return err
		}
	}
	rep.Count = toOpReport(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			queryDB.Count()
		}
	}))
	cond := corebench.WhereCond()
	rep.CountWhere = toOpReport(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := queryDB.CountWhere(cond); err != nil {
				fail(err)
				b.SkipNow()
			}
		}
	}))
	if stepErr != nil {
		return stepErr
	}

	// Pre-refactor baseline, measured with the identical benchmark on the
	// row-oriented []Entry data plane immediately before the columnar
	// refactor landed.
	rep.Baseline.Commit = "5babe3b"
	rep.Baseline.Advance = CoreOpReport{NsPerOp: 613272, AllocsPerOp: 1986, BytesPerOp: 255161, Ops: 4039}
	rep.Baseline.Count = CoreOpReport{NsPerOp: 656.7, AllocsPerOp: 0, BytesPerOp: 0, Ops: 3421642}
	rep.Baseline.CountWhere = CoreOpReport{NsPerOp: 1616, AllocsPerOp: 3, BytesPerOp: 128, Ops: 1501594}
	// A zero-alloc Advance is the best case, not a regression: divide by at
	// least one so the improvement stays meaningful (and finite for JSON).
	denom := rep.Advance.AllocsPerOp
	if denom < 1 {
		denom = 1
	}
	rep.AdvanceAllocsImprovement = float64(rep.Baseline.Advance.AllocsPerOp) / float64(denom)
	if rep.AdvanceBatch8.NsPerOp > 0 {
		rep.BatchPerStepSpeedup = rep.Advance.NsPerOp / rep.AdvanceBatch8.NsPerOp
	}

	fmt.Printf("core: advance %.0f ns/op, %d allocs/op, %d B/op (baseline %d allocs/op, %.0fx fewer)\n",
		rep.Advance.NsPerOp, rep.Advance.AllocsPerOp, rep.Advance.BytesPerOp,
		rep.Baseline.Advance.AllocsPerOp, rep.AdvanceAllocsImprovement)
	fmt.Printf("core: advance-batch8 %.0f ns/step, %d allocs/step (%.2fx per-step speedup)\n",
		rep.AdvanceBatch8.NsPerOp, rep.AdvanceBatch8.AllocsPerOp, rep.BatchPerStepSpeedup)
	fmt.Printf("core: count %.1f ns/op (%d allocs/op), countWhere %.1f ns/op (%d allocs/op)\n",
		rep.Count.NsPerOp, rep.Count.AllocsPerOp, rep.CountWhere.NsPerOp, rep.CountWhere.AllocsPerOp)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("core: report written to %s\n", jsonOut)
	return nil
}
