package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"incshrink/internal/corebench"
	"incshrink/internal/mpc"
)

// The core experiment microbenchmarks the engine's data plane — the
// columnar, pooled buffer path behind Advance, Count and CountWhere — at
// the paper-default deployment (Within=10, epsilon=1.5, T=10, seed 1) with
// a deterministic synthetic stream (three left rows and one joining right
// row per step, mirroring the root-package core benchmarks). It writes a
// machine-readable BENCH_core.json so the Go-side performance trajectory
// can be tracked across PRs, alongside the recorded pre-refactor
// (row-oriented []Entry data plane) baseline for context.

// CoreOpReport is one operation's measurement.
type CoreOpReport struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Ops         int     `json:"ops"`
}

// BatchPoint is one batch size's measurement on the merged deployment.
type BatchPoint struct {
	K             int     `json:"k"`
	NsPerStep     float64 `json:"ns_per_step"`
	AllocsPerStep int64   `json:"allocs_per_step"`
	// Speedup is Advance ns/op over NsPerStep (higher is better).
	Speedup float64 `json:"speedup_vs_advance"`
	// MergedComparators is the compare-exchange count of the single Batcher
	// network a k-block merged segment runs; SequentialComparators is the
	// total for the k per-step networks it replaces. Their ratio is the
	// superlinear saving the wall-clock speedup realizes.
	MergedComparators     int `json:"merged_comparators"`
	SequentialComparators int `json:"sequential_comparators"`
}

// CoreReport is the machine-readable core data-plane benchmark report.
type CoreReport struct {
	Experiment string `json:"experiment"`
	Deployment string `json:"deployment"`

	Advance CoreOpReport `json:"advance"`
	// BatchDeployment names the deployment of the batched measurements:
	// the paper-default engine with window merging on, so AdvanceBatch runs
	// one coalesced Transform per shrink interval (corebench.MergedDeployment).
	BatchDeployment string `json:"batch_deployment"`
	// AdvanceBatch8 is the batched ingestion path at batch size 8 on the
	// merged deployment, normalized per step (one op = one step, not one
	// 8-step batch), so it is directly comparable to Advance. It is the k=8
	// point of BatchCurve.
	AdvanceBatch8 CoreOpReport `json:"advance_batch8"`
	// BatchCurve measures AdvanceBatch at several batch sizes on the merged
	// deployment: wall-clock per step, speedup over Advance, and the
	// compare-exchange counts that explain it (one Batcher network over the
	// merged window versus k per-step networks).
	BatchCurve []BatchPoint `json:"batch_speedup_curve"`
	Count      CoreOpReport `json:"count"`
	CountWhere CoreOpReport `json:"count_where"`

	// Baseline is the same benchmark recorded on the pre-refactor
	// row-oriented engine (commit 5babe3b, this container class), kept in
	// the report so the improvement is visible without digging through git
	// history.
	Baseline struct {
		Commit     string       `json:"commit"`
		Advance    CoreOpReport `json:"advance"`
		Count      CoreOpReport `json:"count"`
		CountWhere CoreOpReport `json:"count_where"`
	} `json:"baseline"`

	// AdvanceAllocsImprovement is baseline allocs/op over current allocs/op
	// on the Advance hot path — the acceptance metric of the columnar
	// refactor (>= 2 required).
	AdvanceAllocsImprovement float64 `json:"advance_allocs_improvement"`
	// BatchPerStepSpeedup is Advance ns/op over AdvanceBatch8 per-step
	// ns/op: how much cheaper one ingested step is inside an 8-step batch
	// than as its own Advance call, at the engine layer (serving-layer
	// amortization is measured separately in BENCH_serve.json).
	BatchPerStepSpeedup float64 `json:"batch_per_step_speedup"`
}

func toOpReport(r testing.BenchmarkResult) CoreOpReport {
	return CoreOpReport{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Ops:         r.N,
	}
}

// runCore benchmarks the Advance/Count/CountWhere hot paths and writes the
// report to jsonOut.
func runCore(jsonOut string) error {
	var rep CoreReport
	rep.Experiment = "core"
	rep.Deployment = corebench.Deployment

	var stepErr error
	fail := func(err error) { stepErr = err }

	advance := testing.Benchmark(func(b *testing.B) {
		db, err := corebench.Open()
		if err != nil {
			fail(err)
			b.SkipNow()
		}
		for t := 0; t < 64; t++ { // steady state: pools warm, windows full
			if err := corebench.Step(db, t); err != nil {
				fail(err)
				b.SkipNow()
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := corebench.Step(db, 64+i); err != nil {
				fail(err)
				b.SkipNow()
			}
		}
	})
	if stepErr != nil {
		return stepErr
	}
	rep.Advance = toOpReport(advance)

	rep.BatchDeployment = corebench.MergedDeployment
	for _, k := range []int{1, 8, 32} {
		batchK := k
		advanceBatch := testing.Benchmark(func(b *testing.B) {
			db, err := corebench.OpenMerged()
			if err != nil {
				fail(err)
				b.SkipNow()
			}
			for t := 0; t < 64; t++ {
				if err := corebench.Step(db, t); err != nil {
					fail(err)
					b.SkipNow()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.AdvanceBatch(corebench.Steps(64+batchK*i, batchK)); err != nil {
					fail(err)
					b.SkipNow()
				}
			}
		})
		if stepErr != nil {
			return stepErr
		}
		// Normalize the k-step batch op to per-step numbers. The comparator
		// counts assume one segment per batch (k <= T); past that the engine
		// splits at observation points and the merged count is per segment.
		pt := BatchPoint{
			K:                     batchK,
			NsPerStep:             float64(advanceBatch.T.Nanoseconds()) / float64(advanceBatch.N*batchK),
			AllocsPerStep:         advanceBatch.AllocsPerOp() / int64(batchK),
			MergedComparators:     mpc.SortCompareExchanges(corebench.MergedAdapterN(batchK)),
			SequentialComparators: batchK * mpc.SortCompareExchanges(corebench.MergedAdapterN(1)),
		}
		rep.BatchCurve = append(rep.BatchCurve, pt)
		if batchK == 8 {
			rep.AdvanceBatch8 = CoreOpReport{
				NsPerOp:     pt.NsPerStep,
				AllocsPerOp: advanceBatch.AllocsPerOp() / int64(batchK),
				BytesPerOp:  advanceBatch.AllocedBytesPerOp() / int64(batchK),
				Ops:         advanceBatch.N * batchK,
			}
		}
	}

	queryDB, err := corebench.Open()
	if err != nil {
		return err
	}
	for t := 0; t < 256; t++ {
		if err := corebench.Step(queryDB, t); err != nil {
			return err
		}
	}
	rep.Count = toOpReport(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			queryDB.Count()
		}
	}))
	cond := corebench.WhereCond()
	rep.CountWhere = toOpReport(testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := queryDB.CountWhere(cond); err != nil {
				fail(err)
				b.SkipNow()
			}
		}
	}))
	if stepErr != nil {
		return stepErr
	}

	// Pre-refactor baseline, measured with the identical benchmark on the
	// row-oriented []Entry data plane immediately before the columnar
	// refactor landed.
	rep.Baseline.Commit = "5babe3b"
	rep.Baseline.Advance = CoreOpReport{NsPerOp: 613272, AllocsPerOp: 1986, BytesPerOp: 255161, Ops: 4039}
	rep.Baseline.Count = CoreOpReport{NsPerOp: 656.7, AllocsPerOp: 0, BytesPerOp: 0, Ops: 3421642}
	rep.Baseline.CountWhere = CoreOpReport{NsPerOp: 1616, AllocsPerOp: 3, BytesPerOp: 128, Ops: 1501594}
	// A zero-alloc Advance is the best case, not a regression: divide by at
	// least one so the improvement stays meaningful (and finite for JSON).
	denom := rep.Advance.AllocsPerOp
	if denom < 1 {
		denom = 1
	}
	rep.AdvanceAllocsImprovement = float64(rep.Baseline.Advance.AllocsPerOp) / float64(denom)
	if rep.AdvanceBatch8.NsPerOp > 0 {
		rep.BatchPerStepSpeedup = rep.Advance.NsPerOp / rep.AdvanceBatch8.NsPerOp
	}
	for i := range rep.BatchCurve {
		if rep.BatchCurve[i].NsPerStep > 0 {
			rep.BatchCurve[i].Speedup = rep.Advance.NsPerOp / rep.BatchCurve[i].NsPerStep
		}
	}

	fmt.Printf("core: advance %.0f ns/op, %d allocs/op, %d B/op (baseline %d allocs/op, %.0fx fewer)\n",
		rep.Advance.NsPerOp, rep.Advance.AllocsPerOp, rep.Advance.BytesPerOp,
		rep.Baseline.Advance.AllocsPerOp, rep.AdvanceAllocsImprovement)
	for _, pt := range rep.BatchCurve {
		fmt.Printf("core: advance-batch k=%-2d %.0f ns/step, %d allocs/step (%.2fx per-step speedup; %d vs %d comparators)\n",
			pt.K, pt.NsPerStep, pt.AllocsPerStep, pt.Speedup, pt.MergedComparators, pt.SequentialComparators)
	}
	fmt.Printf("core: count %.1f ns/op (%d allocs/op), countWhere %.1f ns/op (%d allocs/op)\n",
		rep.Count.NsPerOp, rep.Count.AllocsPerOp, rep.CountWhere.NsPerOp, rep.CountWhere.AllocsPerOp)

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("core: report written to %s\n", jsonOut)
	return nil
}
