// Command incshrink-bench regenerates the paper's evaluation tables and
// figures (Table 2 and Figures 4-9 of Section 7), and benchmarks the
// multi-tenant serving subsystem.
//
// Usage:
//
//	incshrink-bench -exp table2 -steps 400
//	incshrink-bench -exp all -steps 1825 -seed 2022 -workers 8
//	incshrink-bench -exp serve -views 8 -steps 200 -json BENCH_serve.json
//
// The -steps flag sets the simulated horizon in time steps; 1825 matches the
// paper's five-year TPC-ds span but any laptop-scale value preserves the
// shapes. Independent simulation cells — (dataset, engine, parameter point)
// tuples — run concurrently on -workers goroutines (default GOMAXPROCS);
// output is byte-identical for a fixed seed at any worker count. Output is a
// plain-text table per experiment; Ctrl-C aborts the sweep (in-flight cells
// finish but the interrupted experiment's output is discarded; a second
// Ctrl-C exits immediately).
//
// The serve and core experiments are not part of -exp all. serve drives
// -views concurrent tenants × -steps time steps through the internal/serve
// registry (the incshrink-server data path) and writes a machine-readable
// throughput and latency report to -json so the serving-performance
// trajectory can be tracked across PRs; per-view counts in the report are
// deterministic for a fixed -seed, timings are not. core microbenchmarks
// the engine's columnar data plane (Advance/Count/CountWhere ns/op and
// allocs/op at the paper-default deployment) and writes BENCH_core.json,
// including the recorded pre-refactor baseline for comparison.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"incshrink"
	"incshrink/internal/experiments"
	"incshrink/internal/serve"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: serve, core, all, "+strings.Join(experiments.Names(), ", "))
		steps   = flag.Int("steps", 400, "simulation horizon in time steps (paper: 1825)")
		seed    = flag.Int64("seed", 2022, "random seed for workloads and protocols")
		workers = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
		views   = flag.Int("views", 8, "serve experiment: concurrent views")
		jsonOut = flag.String("json", "", "serve/core experiments: machine-readable report path (default BENCH_<exp>.json)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first interrupt cancels the sweep, restore default SIGINT
	// handling so a second Ctrl-C kills the process instead of being
	// swallowed while in-flight cells wind down.
	context.AfterFunc(ctx, stop)

	p := experiments.Params{Steps: *steps, Seed: *seed, Workers: *workers}
	start := time.Now()
	var err error
	if *exp == "serve" {
		out := *jsonOut
		if out == "" {
			out = "BENCH_serve.json"
		}
		err = runServe(ctx, *views, *steps, *seed, *workers, out)
	} else if *exp == "core" {
		out := *jsonOut
		if out == "" {
			out = "BENCH_core.json"
		}
		err = runCore(out)
	} else if *exp == "all" {
		err = experiments.RunAll(ctx, p, os.Stdout)
	} else if runner, ok := experiments.Registry[*exp]; ok {
		err = runner(ctx, p, os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all, %s\n", *exp, strings.Join(experiments.Names(), ", "))
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}

// runServe benchmarks the multi-tenant serving subsystem: views concurrent
// tenants ingesting steps time steps each through the registry, with a
// standing count query every 5 steps, and writes the LoadReport to jsonOut.
func runServe(ctx context.Context, views, steps int, seed int64, workers int, jsonOut string) error {
	reg := serve.NewRegistry(serve.Config{IngestWorkers: workers})
	defer reg.Close(context.Background())
	cfg := serve.LoadConfig{
		Views: views, Steps: steps, QueryEvery: 5, RowsPerStep: 2,
		Def:     incshrink.ViewDef{Within: 10},
		Opts:    incshrink.Options{Epsilon: 1.5, T: 10, Seed: seed},
		Workers: workers,
	}
	rep, err := serve.RunLoad(ctx, reg, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("serve: %d views x %d steps: %d advances (%.0f/s), %d queries (%.0f/s), %.0f rows/s\n",
		rep.Views, rep.Steps, rep.Advances, rep.AdvancesPerSec, rep.Queries, rep.QueriesPerSec, rep.RowsPerSec)
	fmt.Printf("serve: advance latency p50/p99 %.3gms/%.3gms, query latency p50/p99 %.3gms/%.3gms\n",
		rep.AdvanceLatency.P50*1e3, rep.AdvanceLatency.P99*1e3,
		rep.QueryLatency.P50*1e3, rep.QueryLatency.P99*1e3)
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serve: report written to %s\n", jsonOut)
	return nil
}
