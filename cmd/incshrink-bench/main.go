// Command incshrink-bench regenerates the paper's evaluation tables and
// figures (Table 2 and Figures 4-9 of Section 7).
//
// Usage:
//
//	incshrink-bench -exp table2 -steps 400
//	incshrink-bench -exp all -steps 1825 -seed 2022
//
// The -steps flag sets the simulated horizon in time steps; 1825 matches the
// paper's five-year TPC-ds span but any laptop-scale value preserves the
// shapes. Output is a plain-text table per experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"incshrink/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment to run: all, "+strings.Join(experiments.Names(), ", "))
		steps = flag.Int("steps", 400, "simulation horizon in time steps (paper: 1825)")
		seed  = flag.Int64("seed", 2022, "random seed for workloads and protocols")
	)
	flag.Parse()

	p := experiments.Params{Steps: *steps, Seed: *seed}
	start := time.Now()
	var err error
	if *exp == "all" {
		err = experiments.RunAll(p, os.Stdout)
	} else if runner, ok := experiments.Registry[*exp]; ok {
		err = runner(p, os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all, %s\n", *exp, strings.Join(experiments.Names(), ", "))
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}
