// Command incshrink-bench regenerates the paper's evaluation tables and
// figures (Table 2 and Figures 4-9 of Section 7), and benchmarks the
// multi-tenant serving subsystem.
//
// Usage:
//
//	incshrink-bench -exp table2 -steps 400
//	incshrink-bench -exp all -steps 1825 -seed 2022 -workers 8
//	incshrink-bench -exp serve -views 8 -steps 200 -json BENCH_serve.json
//	incshrink-bench -compare BENCH_core.json BENCH_core.new.json
//
// The -steps flag sets the simulated horizon in time steps; 1825 matches the
// paper's five-year TPC-ds span but any laptop-scale value preserves the
// shapes. Independent simulation cells — (dataset, engine, parameter point)
// tuples — run concurrently on -workers goroutines (default GOMAXPROCS);
// output is byte-identical for a fixed seed at any worker count. Output is a
// plain-text table per experiment; Ctrl-C aborts the sweep (in-flight cells
// finish but the interrupted experiment's output is discarded; a second
// Ctrl-C exits immediately).
//
// The serve and core experiments are not part of -exp all. serve drives
// -views concurrent tenants × -steps time steps through the internal/serve
// registry (the incshrink-server data path), once per-step and once with
// -batch-sized AdvanceBatch requests — on the paper-default deployment, an
// ingest-bound microdeployment, and the HTTP ingest path — and writes the
// machine-readable comparison to -json so the serving-performance
// trajectory can be tracked across PRs; per-view counts in the report are
// deterministic for a fixed -seed (and checked identical across batch
// sizes), timings are not. core microbenchmarks the engine's columnar data
// plane (Advance, AdvanceBatch per-step, Count, CountWhere ns/op and
// allocs/op at the paper-default deployment) and writes BENCH_core.json,
// including the recorded pre-refactor baseline for comparison.
//
// -compare diffs two such reports instead of running anything: every
// numeric leaf with a directional name (ns/op, latencies, throughputs) is
// checked for a relative change past -threshold in the bad direction, and
// any regression exits nonzero (the `make bench-diff` gate).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"incshrink"
	"incshrink/internal/experiments"
	"incshrink/internal/oblivious"
	"incshrink/internal/serve"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: serve, core, all, "+strings.Join(experiments.Names(), ", "))
		steps   = flag.Int("steps", 400, "simulation horizon in time steps (paper: 1825)")
		seed    = flag.Int64("seed", 2022, "random seed for workloads and protocols")
		workers = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
		views   = flag.Int("views", 8, "serve experiment: concurrent views")
		batch   = flag.Int("batch", 8, "serve experiment: batched-ingestion batch size (compared against per-step)")
		jsonOut = flag.String("json", "", "serve/core experiments: machine-readable report path (default BENCH_<exp>.json)")
		compare = flag.Bool("compare", false, "compare two BENCH_*.json reports (old then new as positional args) instead of running; exits nonzero on regression")
		thresh  = flag.Float64("threshold", 0.15, "with -compare: relative change past which a directional metric counts as a regression")
		sortWkr = flag.Int("sort-workers", 1, "goroutines per oblivious sort's compare-exchange layers (0 = GOMAXPROCS, 1 = serial); results are identical at any value")
	)
	flag.Parse()
	oblivious.SetSortWorkers(*sortWkr)

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: incshrink-bench -compare [-threshold 0.15] old.json new.json")
			os.Exit(2)
		}
		regressions, err := runCompare(flag.Arg(0), flag.Arg(1), *thresh, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first interrupt cancels the sweep, restore default SIGINT
	// handling so a second Ctrl-C kills the process instead of being
	// swallowed while in-flight cells wind down.
	context.AfterFunc(ctx, stop)

	p := experiments.Params{Steps: *steps, Seed: *seed, Workers: *workers}
	start := time.Now()
	var err error
	if *exp == "serve" {
		out := *jsonOut
		if out == "" {
			out = "BENCH_serve.json"
		}
		err = runServe(ctx, *views, *steps, *seed, *workers, *batch, out)
	} else if *exp == "core" {
		out := *jsonOut
		if out == "" {
			out = "BENCH_core.json"
		}
		err = runCore(out)
	} else if *exp == "all" {
		err = experiments.RunAll(ctx, p, os.Stdout)
	} else if runner, ok := experiments.Registry[*exp]; ok {
		err = runner(ctx, p, os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all, %s\n", *exp, strings.Join(experiments.Names(), ", "))
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}

// ServePairReport compares per-step against batched ingestion of the same
// per-view step sequence on one deployment. CountsIdentical asserts the
// AdvanceBatch equivalence contract end to end: every view's final count
// must be the same at both batch sizes.
type ServePairReport struct {
	Deployment      string           `json:"deployment"`
	PerStep         serve.LoadReport `json:"per_step"`
	Batched         serve.LoadReport `json:"batched"`
	ThroughputRatio float64          `json:"throughput_ratio"` // batched / per-step, in steps per second
	CountsIdentical bool             `json:"counts_identical"`
}

// finish derives the pair's comparison fields once both arms are in and
// enforces the equivalence contract — shared by the Go-API and HTTP arms
// so they can never drift apart.
func (pr *ServePairReport) finish(label string) error {
	if pr.PerStep.AdvancesPerSec > 0 {
		pr.ThroughputRatio = pr.Batched.AdvancesPerSec / pr.PerStep.AdvancesPerSec
	}
	pr.CountsIdentical = len(pr.PerStep.Counts) == len(pr.Batched.Counts)
	for name, n := range pr.PerStep.Counts {
		if pr.Batched.Counts[name] != n {
			pr.CountsIdentical = false
		}
	}
	if !pr.CountsIdentical {
		return fmt.Errorf("serve[%s]: batched counts diverged from per-step — AdvanceBatch equivalence broken", label)
	}
	fmt.Printf("serve[%s]: batched ingest %.2fx per-step throughput (counts identical)\n", label, pr.ThroughputRatio)
	return nil
}

// ServeBenchReport is the machine-readable serving benchmark (the payload
// of BENCH_serve.json): the paper-default deployment, where the per-step
// MPC work dominates, and an ingest-bound microdeployment (minimal blocks
// and window) that isolates the serving-layer cost batching amortizes —
// mailbox round trips, worker-slot handoffs, scheduler switches.
type ServeBenchReport struct {
	Experiment  string          `json:"experiment"`
	Views       int             `json:"views"`
	Steps       int             `json:"steps"`
	BatchSize   int             `json:"batch_size"`
	Default     ServePairReport `json:"default"`
	IngestBound ServePairReport `json:"ingest_bound"`
	// HTTP drives the server's real ingest interface (routing + strict
	// JSON + mailbox) per-step vs batched — the fixed per-request cost the
	// advance-batch endpoint amortizes.
	HTTP ServePairReport `json:"http"`
}

// runServe benchmarks the multi-tenant serving subsystem: views concurrent
// tenants ingesting steps time steps each through the registry (standing
// count query every 5 steps), once one request per step and once with
// batch-sized AdvanceBatch requests, on both deployments, and writes the
// combined report to jsonOut.
func runServe(ctx context.Context, views, steps int, seed int64, workers, batch int, jsonOut string) error {
	runPair := func(label string, def incshrink.ViewDef, opts incshrink.Options) (ServePairReport, error) {
		pr := ServePairReport{Deployment: label}
		for _, b := range []int{1, batch} {
			reg := serve.NewRegistry(serve.Config{IngestWorkers: workers, IngestBatch: batch})
			cfg := serve.LoadConfig{
				Views: views, Steps: steps, QueryEvery: 5, RowsPerStep: 2, Batch: b,
				Def: def, Opts: opts, Workers: workers,
			}
			rep, err := serve.RunLoad(ctx, reg, cfg)
			reg.Close(context.Background())
			if err != nil {
				return pr, err
			}
			if b == 1 {
				pr.PerStep = rep
			} else {
				pr.Batched = rep
			}
			fmt.Printf("serve[%s] batch=%d: %d advances (%.0f steps/s), latency p50/p99 %.3gms/%.3gms\n",
				label, b, rep.Advances, rep.AdvancesPerSec,
				rep.AdvanceLatency.P50*1e3, rep.AdvanceLatency.P99*1e3)
		}
		return pr, pr.finish(label)
	}

	rep := ServeBenchReport{Experiment: "serve", Views: views, Steps: steps, BatchSize: batch}
	var err error
	rep.Default, err = runPair("paper-default: ViewDef{Within:10} Options{Epsilon:1.5,T:10}",
		incshrink.ViewDef{Within: 10},
		incshrink.Options{Epsilon: 1.5, T: 10, Seed: seed})
	if err != nil {
		return err
	}
	rep.IngestBound, err = runPair("ingest-bound: ViewDef{Within:2,Budget:2} Options{MaxLeft:2,MaxRight:2,T:2}",
		incshrink.ViewDef{Within: 2, Budget: 2},
		incshrink.Options{Epsilon: 1.5, T: 2, MaxLeft: 2, MaxRight: 2, Seed: seed})
	if err != nil {
		return err
	}
	rep.HTTP, err = runHTTPPair(ctx, views, steps, seed, workers, batch,
		"http ingest path: ViewDef{Within:2,Budget:2} Options{MaxLeft:2,MaxRight:2,T:2}",
		incshrink.ViewDef{Within: 2, Budget: 2},
		incshrink.Options{Epsilon: 1.5, T: 2, MaxLeft: 2, MaxRight: 2, Seed: seed})
	if err != nil {
		return err
	}

	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serve: report written to %s\n", jsonOut)
	return nil
}
