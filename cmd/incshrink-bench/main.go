// Command incshrink-bench regenerates the paper's evaluation tables and
// figures (Table 2 and Figures 4-9 of Section 7).
//
// Usage:
//
//	incshrink-bench -exp table2 -steps 400
//	incshrink-bench -exp all -steps 1825 -seed 2022 -workers 8
//
// The -steps flag sets the simulated horizon in time steps; 1825 matches the
// paper's five-year TPC-ds span but any laptop-scale value preserves the
// shapes. Independent simulation cells — (dataset, engine, parameter point)
// tuples — run concurrently on -workers goroutines (default GOMAXPROCS);
// output is byte-identical for a fixed seed at any worker count. Output is a
// plain-text table per experiment; Ctrl-C aborts the sweep (in-flight cells
// finish but the interrupted experiment's output is discarded; a second
// Ctrl-C exits immediately).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"incshrink/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment to run: all, "+strings.Join(experiments.Names(), ", "))
		steps   = flag.Int("steps", 400, "simulation horizon in time steps (paper: 1825)")
		seed    = flag.Int64("seed", 2022, "random seed for workloads and protocols")
		workers = flag.Int("workers", 0, "concurrent simulation cells (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// Once the first interrupt cancels the sweep, restore default SIGINT
	// handling so a second Ctrl-C kills the process instead of being
	// swallowed while in-flight cells wind down.
	context.AfterFunc(ctx, stop)

	p := experiments.Params{Steps: *steps, Seed: *seed, Workers: *workers}
	start := time.Now()
	var err error
	if *exp == "all" {
		err = experiments.RunAll(ctx, p, os.Stdout)
	} else if runner, ok := experiments.Registry[*exp]; ok {
		err = runner(ctx, p, os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; available: all, %s\n", *exp, strings.Join(experiments.Names(), ", "))
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "done in %s\n", time.Since(start).Round(time.Millisecond))
}
