// Command datagen emits a synthetic workload trace as CSV, one line per
// record, for inspection or for replaying through external tooling.
//
// Usage:
//
//	datagen -workload tpcds -steps 100 > trace.csv
//
// Columns: step, side (left/right), record id, join key, event time. A
// trailing comment line reports the trace's aggregate statistics.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"incshrink/internal/oblivious"
	"incshrink/internal/workload"
)

func main() {
	var (
		wlName = flag.String("workload", "tpcds", "workload: tpcds or cpdb")
		steps  = flag.Int("steps", 100, "horizon in time steps")
		seed   = flag.Int64("seed", 2022, "random seed")
	)
	flag.Parse()

	var cfg workload.Config
	switch *wlName {
	case "tpcds":
		cfg = workload.TPCDS(*steps, *seed)
	case "cpdb":
		cfg = workload.CPDB(*steps, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wlName)
		os.Exit(2)
	}
	tr, err := workload.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "step,side,id,key,time")
	emit := func(t int, side string, rs []oblivious.Record) {
		for _, r := range rs {
			fmt.Fprintf(w, "%d,%s,%d,%d,%d\n", t, side, r.ID, r.Row[workload.ColKey], r.Row[workload.ColTime])
		}
	}
	for _, st := range tr.Steps {
		emit(st.T, "left", st.Left)
		emit(st.T, "right", st.Right)
	}
	fmt.Fprintf(w, "# workload=%s steps=%d total_pairs=%d mean_pairs_per_step=%.2f left_rows=%d right_rows=%d\n",
		cfg.Name, *steps, tr.TotalPairs, tr.MeanPairsPerStep(), tr.LeftTable.Len(), tr.RightTable.Len())
}
