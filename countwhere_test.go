package incshrink

import (
	"testing"

	"incshrink/internal/query"
)

// TestCmpOpMapping pins the Cmp -> query.Op correspondence CountWhere
// relies on: the public operators convert positionally, so the two enums
// must stay in lockstep.
func TestCmpOpMapping(t *testing.T) {
	cases := []struct {
		cmp  Cmp
		op   query.Op
		text string
	}{
		{Eq, query.EQ, "="},
		{Ne, query.NE, "!="},
		{Lt, query.LT, "<"},
		{Le, query.LE, "<="},
		{Gt, query.GT, ">"},
		{Ge, query.GE, ">="},
	}
	for _, c := range cases {
		if got := query.Op(c.cmp); got != c.op {
			t.Errorf("query.Op(%d) = %v, want %v", c.cmp, got, c.op)
		}
		if got := query.Op(c.cmp).String(); got != c.text {
			t.Errorf("op %v renders %q, want %q", c.op, got, c.text)
		}
	}
}

// countWhereDB builds a small view: keys 1..40, one matched pair per day
// with lag cycling 0..3, T=1 so the view synchronizes every step.
func countWhereDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(ViewDef{Within: 10}, Options{Seed: 9, T: 1, MaxLeft: 8, MaxRight: 8})
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 40; day++ {
		key := int64(day + 1)
		lag := int64(day % 4)
		if err := db.Advance([]Row{{key, int64(day)}}, []Row{{key, int64(day) + lag}}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestCountWhereOperators checks every operator round-trips through the
// rewrite and executes with the right semantics: complementary operator
// pairs must partition the view exactly.
func TestCountWhereOperators(t *testing.T) {
	db := countWhereDB(t)
	total, _, err := db.CountWhere()
	if err != nil {
		t.Fatal(err)
	}
	if total == 0 {
		t.Fatal("view empty")
	}
	count := func(c Cmp, val int64) int {
		t.Helper()
		n, _, err := db.CountWhere(Where{Col: "left.key", Cmp: c, Val: val})
		if err != nil {
			t.Fatalf("op %d: %v", c, err)
		}
		return n
	}
	const pivot = 20
	eq, ne := count(Eq, pivot), count(Ne, pivot)
	lt, ge := count(Lt, pivot), count(Ge, pivot)
	le, gt := count(Le, pivot), count(Gt, pivot)
	if eq+ne != total {
		t.Errorf("Eq+Ne = %d+%d != total %d", eq, ne, total)
	}
	if lt+ge != total {
		t.Errorf("Lt+Ge = %d+%d != total %d", lt, ge, total)
	}
	if le+gt != total {
		t.Errorf("Le+Gt = %d+%d != total %d", le, gt, total)
	}
	if le != lt+eq {
		t.Errorf("Le %d != Lt %d + Eq %d", le, lt, eq)
	}
	if ge != gt+eq {
		t.Errorf("Ge %d != Gt %d + Eq %d", ge, gt, eq)
	}
	if lt == 0 || gt == 0 {
		t.Errorf("pivot did not split the view: lt=%d gt=%d", lt, gt)
	}

	// The difference form (Minus) with every ordering operator: lag cycles
	// 0..3, so lag<=1 and lag>1 also partition.
	diff := func(c Cmp, val int64) int {
		t.Helper()
		n, _, err := db.CountWhere(Where{Col: "right.time", Minus: "left.time", Cmp: c, Val: val})
		if err != nil {
			t.Fatalf("diff op %d: %v", c, err)
		}
		return n
	}
	if fast, slow := diff(Le, 1), diff(Gt, 1); fast+slow != total || fast == 0 || slow == 0 {
		t.Errorf("lag partition: %d + %d != %d", fast, slow, total)
	}
}

// TestCountWhereErrors covers the rewrite error paths: unknown filter
// column, unknown Minus column, and errors on any condition of a
// conjunction — all without perturbing the query stats.
func TestCountWhereErrors(t *testing.T) {
	db := countWhereDB(t)
	queriesBefore := db.Stats().QuerySeconds

	if _, _, err := db.CountWhere(Where{Col: "price", Cmp: Gt, Val: 0}); err == nil {
		t.Error("unknown column accepted")
	}
	if _, _, err := db.CountWhere(Where{Col: "right.time", Minus: "ship.time", Cmp: Le, Val: 1}); err == nil {
		t.Error("unknown Minus column accepted")
	}
	if _, _, err := db.CountWhere(
		Where{Col: "left.key", Cmp: Gt, Val: 0},
		Where{Col: "nope", Cmp: Eq, Val: 1},
	); err == nil {
		t.Error("bad second condition accepted")
	}
	if _, _, err := db.CountWhere(
		Where{Col: "left.key", Cmp: Gt, Val: 0},
		Where{Col: "right.time", Minus: "nope", Cmp: Le, Val: 1},
	); err == nil {
		t.Error("bad Minus in second condition accepted")
	}
	if after := db.Stats().QuerySeconds; after != queriesBefore {
		t.Errorf("failed rewrites charged the query meter: %v -> %v", queriesBefore, after)
	}
}
