package incshrink_test

import (
	"bytes"
	"testing"

	"incshrink"
	"incshrink/internal/corebench"
	"incshrink/internal/mpc"
	"incshrink/internal/oblivious"
)

// TestAdvanceBatchStepAllocs pins the batched-ingestion allocation contract:
// a steady-state AdvanceBatch must allocate no more per covered step than a
// steady-state Advance — the record arena is one sized allocation per batch,
// so the batched path amortizes while the sequential path pays per call.
func TestAdvanceBatchStepAllocs(t *testing.T) {
	warm := func() *incshrink.DB {
		db, err := corebench.Open()
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 64; s++ {
			if err := corebench.Step(db, s); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}

	const rounds = 50
	seq := warm()
	st := 64
	single := testing.AllocsPerRun(rounds, func() {
		if err := corebench.Step(seq, st); err != nil {
			t.Fatal(err)
		}
		st++
	})

	const k = 8
	bat := warm()
	batches := make([][]incshrink.StepRows, rounds+1) // workload built outside the measurement
	for i := range batches {
		batches[i] = corebench.Steps(64+k*i, k)
	}
	bi := 0
	perStep := testing.AllocsPerRun(rounds, func() {
		if err := bat.AdvanceBatch(batches[bi]); err != nil {
			t.Fatal(err)
		}
		bi++
	}) / k

	if perStep > single {
		t.Fatalf("batched ingestion allocates %.2f/step, sequential %.2f/step: batching must not cost more", perStep, single)
	}
}

// bigOpts is a deployment whose merged upload windows exceed the parallel
// sort cutoff, so batched ingestion actually exercises the layer-parallel
// Batcher executor (the corebench deployment's sorts stay below it).
func bigOpts() (incshrink.ViewDef, incshrink.Options) {
	return incshrink.ViewDef{Within: 10},
		incshrink.Options{Epsilon: 1.5, T: 10, Seed: 1, MaxLeft: 128, MaxRight: 32, MergeWindows: true}
}

// TestSortWorkersSnapshotIdentical: the full durability snapshot — arenas,
// budgets, RNG positions, cost meter — must be byte-identical at any
// -sort-workers value, on a deployment large enough that the parallel
// executor engages. This is the end-to-end form of the oblivious-layer
// determinism tests.
func TestSortWorkersSnapshotIdentical(t *testing.T) {
	run := func(workers int) []byte {
		oblivious.SetSortWorkers(workers)
		defer oblivious.SetSortWorkers(1)
		def, opts := bigOpts()
		db, err := incshrink.Open(def, opts)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < 40; lo += 8 {
			if err := db.AdvanceBatch(corebench.Steps(lo, 8)); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := db.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	for _, workers := range []int{2, 4} {
		if !bytes.Equal(serial, run(workers)) {
			t.Fatalf("snapshot at sort-workers=%d differs from serial: parallel sort must be byte-deterministic", workers)
		}
	}
}

// TestMergedCountsMatchSequential checks the public-API contract of
// Options.MergeWindows on the corebench stream (every key pairs exactly
// once): query answers match sequential ingestion at every batch boundary
// while the simulated transform cost drops.
func TestMergedCountsMatchSequential(t *testing.T) {
	seq, err := corebench.Open()
	if err != nil {
		t.Fatal(err)
	}
	mrg, err := corebench.OpenMerged()
	if err != nil {
		t.Fatal(err)
	}
	for lo := 0; lo < 60; lo += 10 {
		steps := corebench.Steps(lo, 10)
		if err := seq.AdvanceBatch(steps); err != nil {
			t.Fatal(err)
		}
		if err := mrg.AdvanceBatch(steps); err != nil {
			t.Fatal(err)
		}
		ns, _ := seq.Count()
		nm, _ := mrg.Count()
		if ns != nm {
			t.Fatalf("after step %d: sequential count %d, merged count %d", lo+9, ns, nm)
		}
	}
	if st, mt := seq.Stats().TransformSeconds, mrg.Stats().TransformSeconds; mt >= st {
		t.Fatalf("merged transform cost %.3fs not below sequential %.3fs", mt, st)
	}
}

// TestMergedAdapterNMatchesMeter pins corebench.MergedAdapterN — the closed
// form behind the comparator counts reported in BENCH_core.json — against
// the engine's actual meter: one 10-step batch at the merged deployment is
// one segment (T=10, no observation before t=10), and its transform charge
// must be exactly the Batcher network over MergedAdapterN(10) tuples plus
// the two linear passes (join emit, tight compaction) over the
// omega-bounded output.
func TestMergedAdapterNMatchesMeter(t *testing.T) {
	db, err := corebench.OpenMerged()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AdvanceBatch(corebench.Steps(0, 10)); err != nil {
		t.Fatal(err)
	}
	model := mpc.DefaultCostModel()
	n := corebench.MergedAdapterN(10)
	const sortBits, rowBits = 64 * 3, 64 * 4 // (key, tag) over a stream row; a view row
	gates := float64(mpc.SortCompareExchanges(n))*sortBits*model.ANDGatesPerCompareExchangeBit +
		float64(n)*rowBits*model.ANDGatesPerScanBit + // join emit (omega=1 slot per adapter tuple)
		float64(2*n)*rowBits*model.ANDGatesPerScanBit // tight compaction
	want := gates / model.GatesPerSecond
	got := db.Stats().TransformSeconds
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("merged transform charged %.9fs, closed form says %.9fs (adapter %d)", got, want, n)
	}
}

// TestMergedSnapshotRoundTrip: Options.MergeWindows survives the durability
// codec — a restored merged database continues byte-identically to the
// original, still coalescing windows.
func TestMergedSnapshotRoundTrip(t *testing.T) {
	db, err := corebench.OpenMerged()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AdvanceBatch(corebench.Steps(0, 16)); err != nil {
		t.Fatal(err)
	}
	var a bytes.Buffer
	if err := db.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	restored, err := incshrink.Restore(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []*incshrink.DB{db, restored} {
		if err := d.AdvanceBatch(corebench.Steps(16, 16)); err != nil {
			t.Fatal(err)
		}
	}
	var ob, rb bytes.Buffer
	if err := db.Snapshot(&ob); err != nil {
		t.Fatal(err)
	}
	if err := restored.Snapshot(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ob.Bytes(), rb.Bytes()) {
		t.Fatal("restored merged database diverged from the original after further batches")
	}
}
