package incshrink

import (
	"math/rand"
	"testing"
)

func TestOpenDefaults(t *testing.T) {
	db, err := Open(ViewDef{Within: 10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if db.Now() != 0 {
		t.Error("fresh DB not at t=0")
	}
	st := db.Stats()
	if st.Epsilon != 1.5 {
		t.Errorf("default epsilon %v", st.Epsilon)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(ViewDef{Within: -1}, Options{}); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := Open(ViewDef{Within: 5}, Options{Epsilon: -2}); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestAdvanceAndCount(t *testing.T) {
	db, err := Open(ViewDef{Within: 10}, Options{Seed: 7, T: 5, MaxLeft: 8, MaxRight: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7)) //lint:allow rngdraw test-local stream, never snapshotted or resumed
	truth := 0
	key := int64(1)
	for day := 0; day < 120; day++ {
		var left, right []Row
		// Two sales a day; ~70% get a matching return within the window.
		for i := 0; i < 2; i++ {
			left = append(left, Row{key, int64(day)})
			if rng.Float64() < 0.7 {
				lag := int64(rng.Intn(10))
				right = append(right, Row{key, int64(day) + lag})
				// The pair becomes true once the return's own day arrives;
				// for this test we feed returns on their event day below,
				// so count it when emitted. We emit immediately with a
				// forward-dated timestamp, which the view's predicate
				// accepts, so count now.
				truth++
			}
			key++
		}
		if err := db.Advance(left, right); err != nil {
			t.Fatal(err)
		}
	}
	got, qet, stats := finalState(t, db)
	if qet <= 0 {
		t.Error("QET should be positive")
	}
	if got == 0 {
		t.Fatal("count never grew")
	}
	diff := truth - got
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.5*float64(truth) {
		t.Errorf("count %d too far from truth %d", got, truth)
	}
	if stats.Updates == 0 {
		t.Error("no view updates")
	}
	if stats.ViewEntries == 0 || stats.ViewSlots < stats.ViewEntries {
		t.Errorf("view stats inconsistent: %+v", stats)
	}
	if stats.Step != 120 {
		t.Errorf("step = %d", stats.Step)
	}
}

func finalState(t *testing.T, db *DB) (int, float64, Stats) {
	t.Helper()
	n, qet := db.Count()
	return n, qet, db.Stats()
}

func TestAdvanceBlockSizeEnforced(t *testing.T) {
	db, err := Open(ViewDef{Within: 5}, Options{MaxLeft: 2, MaxRight: 2})
	if err != nil {
		t.Fatal(err)
	}
	big := []Row{{1, 0}, {2, 0}, {3, 0}}
	if err := db.Advance(big, nil); err == nil {
		t.Error("oversized left upload accepted")
	}
	if err := db.Advance(nil, big); err == nil {
		t.Error("oversized right upload accepted")
	}
}

func TestPublicRightUnbounded(t *testing.T) {
	db, err := Open(ViewDef{Within: 5, RightPublic: true}, Options{MaxLeft: 4, MaxRight: 2})
	if err != nil {
		t.Fatal(err)
	}
	big := []Row{{1, 0}, {2, 0}, {3, 0}}
	if err := db.Advance(nil, big); err != nil {
		t.Errorf("public right should not be size-capped: %v", err)
	}
}

func TestRowValidation(t *testing.T) {
	db, _ := Open(ViewDef{Within: 5}, Options{})
	if err := db.Advance([]Row{{1}}, nil); err == nil {
		t.Error("one-attribute row accepted")
	}
}

// TestWideRowsAcceptedAndIgnored: rows may carry extra attributes beyond
// {key, time}; the engine drops them at the API boundary (the fixed-arity
// data plane carries exactly the join schema) instead of panicking or
// corrupting the view column mapping.
func TestWideRowsAcceptedAndIgnored(t *testing.T) {
	wide, err := Open(ViewDef{Within: 10}, Options{T: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	narrow, _ := Open(ViewDef{Within: 10}, Options{T: 5, Seed: 7})
	for day := 0; day < 40; day++ {
		k := int64(day)
		if err := wide.Advance([]Row{{k, k, 99, 98}}, []Row{{k, k + 1, 77}}); err != nil {
			t.Fatalf("day %d: wide rows rejected: %v", day, err)
		}
		if err := narrow.Advance([]Row{{k, k}}, []Row{{k, k + 1}}); err != nil {
			t.Fatal(err)
		}
	}
	nw, _ := wide.Count()
	nn, _ := narrow.Count()
	if nw != nn {
		t.Errorf("wide-row count %d != narrow-row count %d", nw, nn)
	}
	cond := Where{Col: "right.time", Minus: "left.time", Cmp: Le, Val: 10}
	fw, _, err := wide.CountWhere(cond)
	if err != nil {
		t.Fatal(err)
	}
	fn, _, _ := narrow.CountWhere(cond)
	if fw != fn {
		t.Errorf("wide-row filtered count %d != narrow-row %d", fw, fn)
	}
}

func TestANTProtocol(t *testing.T) {
	db, err := Open(ViewDef{Within: 10}, Options{Protocol: SDPANT, Theta: 10, Seed: 3, MaxLeft: 8, MaxRight: 8})
	if err != nil {
		t.Fatal(err)
	}
	key := int64(1)
	for day := 0; day < 100; day++ {
		left := []Row{{key, int64(day)}}
		right := []Row{{key, int64(day)}}
		key++
		if err := db.Advance(left, right); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Updates == 0 {
		t.Error("ANT never synchronized")
	}
	n, _ := db.Count()
	if n == 0 {
		t.Error("view empty after 100 matching days")
	}
}

func TestProtocolString(t *testing.T) {
	if SDPTimer.String() != "sDPTimer" || SDPANT.String() != "sDPANT" {
		t.Error("protocol names wrong")
	}
}

func TestCountWhere(t *testing.T) {
	db, err := Open(ViewDef{Within: 10}, Options{Seed: 5, T: 3, MaxLeft: 8, MaxRight: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Keys 1..60, one matched pair per day; half the pairs have lag <= 2.
	for day := 0; day < 60; day++ {
		key := int64(day + 1)
		lag := int64(day % 4) // 0,1,2,3 cycling
		if err := db.Advance([]Row{{key, int64(day)}}, []Row{{key, int64(day) + lag}}); err != nil {
			t.Fatal(err)
		}
	}
	all, _, err := db.CountWhere()
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := db.CountWhere(Where{Col: "right.time", Minus: "left.time", Cmp: Le, Val: 1})
	if err != nil {
		t.Fatal(err)
	}
	if all == 0 {
		t.Fatal("unconditional count empty")
	}
	if fast >= all {
		t.Errorf("filtered count %d not below total %d", fast, all)
	}
	// Lags cycle 0..3 uniformly, so lag<=1 is about half of all pairs.
	ratio := float64(fast) / float64(all)
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("filtered/total ratio %v, want about 0.5", ratio)
	}
	// Unknown column errors.
	if _, _, err := db.CountWhere(Where{Col: "price", Cmp: Gt, Val: 0}); err == nil {
		t.Error("unknown column accepted")
	}
}
