module incshrink

go 1.24
