package incshrink_test

import (
	"testing"

	"incshrink"
	"incshrink/internal/corebench"
)

// The core data-plane benchmarks drive the public API at the paper-default
// deployment with a deterministic synthetic stream, both defined once in
// internal/corebench so `incshrink-bench -exp core` (the source of the
// BENCH_core.json trajectory) measures exactly the same workload.

func benchOpen(b *testing.B) *incshrink.DB {
	b.Helper()
	db, err := corebench.Open()
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func benchStep(b *testing.B, db *incshrink.DB, t int) {
	b.Helper()
	if err := corebench.Step(db, t); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAdvance(b *testing.B) {
	db := benchOpen(b)
	for t := 0; t < 64; t++ { // steady state: pools warm, windows full
		benchStep(b, db, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStep(b, db, 64+i)
	}
}

func BenchmarkCount(b *testing.B) {
	db := benchOpen(b)
	for t := 0; t < 256; t++ {
		benchStep(b, db, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Count()
	}
}

func BenchmarkCountWhere(b *testing.B) {
	db := benchOpen(b)
	for t := 0; t < 256; t++ {
		benchStep(b, db, t)
	}
	cond := corebench.WhereCond()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.CountWhere(cond); err != nil {
			b.Fatal(err)
		}
	}
}
