package incshrink_test

import (
	"testing"

	"incshrink"
	"incshrink/internal/corebench"
)

// The core data-plane benchmarks drive the public API at the paper-default
// deployment with a deterministic synthetic stream, both defined once in
// internal/corebench so `incshrink-bench -exp core` (the source of the
// BENCH_core.json trajectory) measures exactly the same workload.

func benchOpen(b *testing.B) *incshrink.DB {
	b.Helper()
	db, err := corebench.Open()
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func benchStep(b *testing.B, db *incshrink.DB, t int) {
	b.Helper()
	if err := corebench.Step(db, t); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAdvance(b *testing.B) {
	db := benchOpen(b)
	for t := 0; t < 64; t++ { // steady state: pools warm, windows full
		benchStep(b, db, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchStep(b, db, 64+i)
	}
}

// BenchmarkAdvanceBatch8 measures the batched ingestion path at batch size
// 8 on the merged deployment (corebench.MergedDeployment — one coalesced
// Transform per shrink interval); ns/op is per step (each iteration applies
// 8 steps through one AdvanceBatch), directly comparable to
// BenchmarkAdvance.
func BenchmarkAdvanceBatch8(b *testing.B) {
	const k = 8
	db, err := corebench.OpenMerged()
	if err != nil {
		b.Fatal(err)
	}
	for t := 0; t < 64; t++ { // steady state: pools warm, windows full
		benchStep(b, db, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.AdvanceBatch(corebench.Steps(64+k*i, k)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*k), "ns/step")
}

func BenchmarkCount(b *testing.B) {
	db := benchOpen(b)
	for t := 0; t < 256; t++ {
		benchStep(b, db, t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Count()
	}
}

func BenchmarkCountWhere(b *testing.B) {
	db := benchOpen(b)
	for t := 0; t < 256; t++ {
		benchStep(b, db, t)
	}
	cond := corebench.WhereCond()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.CountWhere(cond); err != nil {
			b.Fatal(err)
		}
	}
}
