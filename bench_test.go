// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (regenerating the same rows/series; see
// internal/experiments), plus the ablation benches called out in DESIGN.md
// section 5. Custom b.ReportMetric values surface the *shape* quantities —
// improvement factors, error levels, cache growth — alongside the wall-clock
// cost of the simulation itself.
package incshrink

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"incshrink/internal/core"
	"incshrink/internal/dp"
	"incshrink/internal/experiments"
	"incshrink/internal/mpc"
	"incshrink/internal/oblivious"
	"incshrink/internal/sim"
	"incshrink/internal/table"
	"incshrink/internal/workload"
)

// benchParams keeps each benchmark iteration laptop-cheap while preserving
// the paper's shapes; run cmd/incshrink-bench -steps 1825 for the full span.
var benchParams = experiments.Params{Steps: 120, Seed: 2022}

// BenchmarkTable2 regenerates the aggregated comparison statistics (Table 2)
// and reports the headline shape metrics for DP-Timer on TPC-ds. Caches are
// dropped every iteration so the full simulation cost is measured.
func BenchmarkTable2(b *testing.B) {
	var rows []experiments.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		rows, err = experiments.Table2(context.Background(), benchParams)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Candidate == "DP-Timer" && r.Dataset == "TPC-ds" {
			b.ReportMetric(r.ImpOverNM, "impQET/NM")
			b.ReportMetric(r.AvgL1, "avgL1")
		}
	}
}

func benchFigure(b *testing.B, f func(context.Context, experiments.Params) ([]experiments.Figure, error)) {
	b.Helper()
	var figs []experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		figs, err = f(context.Background(), benchParams)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(figs)), "panels")
}

// BenchmarkFigure4 regenerates the end-to-end accuracy/efficiency scatter.
func BenchmarkFigure4(b *testing.B) { benchFigure(b, experiments.Figure4) }

// BenchmarkFigure5 regenerates the epsilon sweep (3-way trade-off).
func BenchmarkFigure5(b *testing.B) { benchFigure(b, experiments.Figure5) }

// BenchmarkFigure6 regenerates the Sparse/Standard/Burst comparison.
func BenchmarkFigure6(b *testing.B) { benchFigure(b, experiments.Figure6) }

// BenchmarkFigure7 regenerates the T/theta sweep at three privacy levels.
func BenchmarkFigure7(b *testing.B) { benchFigure(b, experiments.Figure7) }

// BenchmarkFigure8 regenerates the truncation-bound study on CPDB.
func BenchmarkFigure8(b *testing.B) { benchFigure(b, experiments.Figure8) }

// BenchmarkFigure9 regenerates the data-scaling study.
func BenchmarkFigure9(b *testing.B) { benchFigure(b, experiments.Figure9) }

// --- Ablations (DESIGN.md section 5) ---

// BenchmarkAblationNoiseJoint measures the joint fixed-point Laplace sampler
// of Algorithm 2 (two 32-bit words, inversion) and reports its empirical
// scale error against the analytic Laplace median, versus the float64
// baseline sampler below.
func BenchmarkAblationNoiseJoint(b *testing.B) {
	rng := rand.New(rand.NewSource(1)) //lint:allow rngdraw test-local stream, never snapshotted or resumed
	abs := make([]float64, 0, b.N)
	for i := 0; i < b.N; i++ {
		v := dp.LaplaceFromWords(1.0, rng.Uint32(), rng.Uint32())
		abs = append(abs, math.Abs(v))
	}
	if len(abs) > 100 {
		sort.Float64s(abs)
		med := abs[len(abs)/2]
		b.ReportMetric(math.Abs(med-math.Ln2)/math.Ln2, "medianErr")
	}
}

// BenchmarkAblationNoiseFloat is the ideal float64 inversion sampler: the
// comparison point showing the 32-bit fixed-point discretization costs
// nothing measurable in distribution quality.
func BenchmarkAblationNoiseFloat(b *testing.B) {
	rng := rand.New(rand.NewSource(1)) //lint:allow rngdraw test-local stream, never snapshotted or resumed
	abs := make([]float64, 0, b.N)
	for i := 0; i < b.N; i++ {
		u := rng.Float64()
		v := math.Log(u)
		if rng.Intn(2) == 0 {
			v = -v
		}
		abs = append(abs, math.Abs(v))
	}
	if len(abs) > 100 {
		sort.Float64s(abs)
		med := abs[len(abs)/2]
		b.ReportMetric(math.Abs(med-math.Ln2)/math.Ln2, "medianErr")
	}
}

// runCacheAblation runs DP-Timer on TPC-ds with or without the incremental
// Theorem-4 prune and reports the cache high-water mark and the simulated
// Shrink cost: the trade-off the prune design buys.
func runCacheAblation(b *testing.B, prune bool) {
	b.Helper()
	wl := workload.TPCDS(benchParams.Steps, benchParams.Seed)
	tr, err := workload.Generate(wl)
	if err != nil {
		b.Fatal(err)
	}
	var m core.Metrics
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig(wl, benchParams.Seed)
		cfg.T = 10
		if !prune {
			cfg.PruneTo = 0
			cfg.FlushEvery = 50 // the literal-paper flush, scaled to horizon
			cfg.FlushSize = 15
		}
		e, err := core.NewTimerEngine(cfg, wl)
		if err != nil {
			b.Fatal(err)
		}
		for _, st := range tr.Steps {
			e.Step(st)
		}
		m = e.Metrics()
	}
	b.ReportMetric(float64(m.CacheMax), "cacheMax")
	b.ReportMetric(m.ShrinkSecs, "simShrinkSecs")
	b.ReportMetric(float64(m.LostReal), "lostReal")
}

// BenchmarkAblationFlushPrune measures the incremental Theorem-4 prune.
func BenchmarkAblationFlushPrune(b *testing.B) { runCacheAblation(b, true) }

// BenchmarkAblationFlushPaper measures the literal periodic flush instead:
// the cache grows between flushes and the Shrink sorts get expensive.
func BenchmarkAblationFlushPaper(b *testing.B) { runCacheAblation(b, false) }

// BenchmarkAblationTruncateSMJ measures the truncated sort-merge join of
// Example 5.1 and reports its simulated gate cost.
func BenchmarkAblationTruncateSMJ(b *testing.B) {
	t1, t2 := ablationTables(128)
	meter := mpc.NewMeter(mpc.DefaultCostModel())
	for i := 0; i < b.N; i++ {
		meter.Reset()
		oblivious.TruncatedSortMergeJoin(t1, t2, 0, 0, nil, 4, meter, mpc.OpTransform)
	}
	b.ReportMetric(meter.TotalGates(), "simGates")
}

// BenchmarkAblationTruncateNLJ measures the truncated nested-loop join of
// Algorithm 4 on the same input: quadratic equality tests plus per-outer
// sorts make it far more expensive in simulated gates.
func BenchmarkAblationTruncateNLJ(b *testing.B) {
	t1, t2 := ablationTables(128)
	meter := mpc.NewMeter(mpc.DefaultCostModel())
	for i := 0; i < b.N; i++ {
		meter.Reset()
		oblivious.TruncatedNestedLoopJoin(t1, t2, 0, 0, nil, 4, meter, mpc.OpTransform)
	}
	b.ReportMetric(meter.TotalGates(), "simGates")
}

func ablationTables(n int) (t1, t2 []oblivious.Record) {
	rng := rand.New(rand.NewSource(7)) //lint:allow rngdraw test-local stream, never snapshotted or resumed
	for i := 0; i < n; i++ {
		t1 = append(t1, oblivious.Record{ID: int64(i), Row: table.Row{int64(rng.Intn(n / 4)), int64(i)}})
		t2 = append(t2, oblivious.Record{ID: int64(n + i), Row: table.Row{int64(rng.Intn(n / 4)), int64(i)}})
	}
	return t1, t2
}

// BenchmarkAblationSortBatcher measures the oblivious Batcher network against
// BenchmarkAblationSortStdlib (non-oblivious) on the same input: the price of
// data-independence in real CPU terms.
func BenchmarkAblationSortBatcher(b *testing.B) {
	base := ablationEntries(1024)
	es := make([]oblivious.Entry, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(es, base)
		oblivious.Sort(es, oblivious.ByIsViewFirst, nil, mpc.OpOther, 64)
	}
}

// BenchmarkAblationSortStdlib is the comparison point for the sort ablation.
func BenchmarkAblationSortStdlib(b *testing.B) {
	base := ablationEntries(1024)
	es := make([]oblivious.Entry, len(base))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(es, base)
		sort.SliceStable(es, func(x, y int) bool { return es[x].IsView && !es[y].IsView })
	}
}

func ablationEntries(n int) []oblivious.Entry {
	rng := rand.New(rand.NewSource(9)) //lint:allow rngdraw test-local stream, never snapshotted or resumed
	es := make([]oblivious.Entry, n)
	for i := range es {
		es[i] = oblivious.Entry{Row: table.Row{int64(i)}, IsView: rng.Intn(2) == 0}
	}
	return es
}

// BenchmarkEndToEndTimerTPCDS measures one full DP-Timer deployment over the
// bench horizon: the cost of the whole simulation pipeline.
func BenchmarkEndToEndTimerTPCDS(b *testing.B) {
	wl := workload.TPCDS(benchParams.Steps, benchParams.Seed)
	tr, err := workload.Generate(wl)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(wl, benchParams.Seed)
	cfg.T = 10
	b.ResetTimer()
	var r sim.Result
	for i := 0; i < b.N; i++ {
		r, err = sim.RunKind(sim.KindTimer, cfg, tr, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgL1, "avgL1")
	b.ReportMetric(r.AvgQET*1e3, "QETms")
}

// BenchmarkEndToEndANTCPDB is the CPDB/sDPANT counterpart.
func BenchmarkEndToEndANTCPDB(b *testing.B) {
	wl := workload.CPDB(benchParams.Steps, benchParams.Seed)
	tr, err := workload.Generate(wl)
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig(wl, benchParams.Seed)
	cfg.T = 3
	b.ResetTimer()
	var r sim.Result
	for i := 0; i < b.N; i++ {
		r, err = sim.RunKind(sim.KindANT, cfg, tr, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.AvgL1, "avgL1")
	b.ReportMetric(r.AvgQET*1e3, "QETms")
}
