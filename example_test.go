package incshrink_test

import (
	"fmt"

	"incshrink"
)

// ExampleOpen demonstrates the minimal lifecycle: open a database over a
// temporal-join view, advance it with both owners' records, and answer the
// standing count query from the DP-maintained materialized view.
func ExampleOpen() {
	db, err := incshrink.Open(
		incshrink.ViewDef{Within: 3},
		incshrink.Options{Epsilon: 5, T: 2, MaxLeft: 4, MaxRight: 4, Seed: 42},
	)
	if err != nil {
		panic(err)
	}
	// Day 0: order 1 placed. Day 1: order 2 placed, order 1 delivered.
	_ = db.Advance([]incshrink.Row{{1, 0}}, nil)
	_ = db.Advance([]incshrink.Row{{2, 1}}, []incshrink.Row{{1, 1}})
	_ = db.Advance(nil, []incshrink.Row{{2, 2}})
	_ = db.Advance(nil, nil) // idle day; the timer still fires on schedule

	n, _ := db.Count()
	fmt.Println("on-time deliveries:", n)
	// Output: on-time deliveries: 2
}
